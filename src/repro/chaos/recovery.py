"""Dead-leaf detection and crash-exact recovery.

:class:`RecoveryCoordinator` is the control-plane half of the chaos
layer: it owns a probe endpoint on the service's network, detects a
dead server with capped-exponential-backoff liveness probes
(:class:`~repro.core.service.RetryPolicy` spacing real protocol-lane
timeouts, not a side-channel oracle), and then repairs the cluster by
one of two strategies:

* ``"restart"`` — the paper's Section 5 story: replay the crashed
  server's persistent visitor WAL in place
  (:meth:`~repro.core.service.LocationService.restart_server`) and let
  sightings rebuild from the report stream.
* ``"merge"`` — the server stays dead: re-home its region onto the
  parent via the :class:`~repro.cluster.migration.MigrationExecutor`'s
  merge path, replaying the dead leaf's WAL into the staging store so
  the parent becomes agent-of-record for every visitor the dead leaf
  tracked — even though the dead leaf can export nothing itself.  The
  cutover's epoch bump and scoped ``CacheInvalidate`` broadcast repair
  forwarding aliases and §6.5 caches; the dead retirement alias is then
  garbage-collected so stale envelopes re-route through the root
  instead of dead-lettering against a downed address.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field

from repro.cluster.migration import MigrationExecutor
from repro.cluster.planner import MergePlan
from repro.core import messages as m
from repro.core.hierarchy import Hierarchy
from repro.core.service import RetryPolicy
from repro.errors import LocationServiceError, TransportError
from repro.runtime.base import Endpoint
from repro.storage.visitor_db import VisitorDB

__all__ = ["RecoveryCoordinator", "RecoveryReport"]

_prober_ids = itertools.count()


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What one :meth:`RecoveryCoordinator.recover_leaf` call did."""

    server_id: str
    strategy: str  # "merge" or "restart"
    #: liveness probes sent before declaring the server dead.
    detection_attempts: int
    #: virtual seconds from first probe to the dead verdict.
    detection_time_s: float
    #: leaf visitor records replayed from the crashed server's WAL.
    replayed_records: int
    #: objects re-homed by the merge cutover (0 for restarts).
    moved: int
    #: the region's new agent (the parent for merges, the restarted
    #: server itself for restarts).
    new_home: str
    #: object id → new agent leaf — feed this to the driving harness's
    #: home map, exactly like a ``MigrationReport``.
    new_homes: dict[str, str] = field(default_factory=dict)


class RecoveryCoordinator:
    """Detects dead servers and re-homes their regions.

    ``probe_policy`` spaces the liveness probes (capped exponential
    backoff by default — a dead destination is not hammered at network
    rate); ``probe_timeout`` bounds each individual probe.
    """

    def __init__(
        self,
        service,
        executor: MigrationExecutor | None = None,
        monitor=None,
        probe_policy: RetryPolicy | None = None,
        probe_timeout: float = 0.25,
    ) -> None:
        self.svc = service
        self.executor = executor if executor is not None else MigrationExecutor(service)
        self.monitor = monitor
        self.probe_policy = (
            probe_policy
            if probe_policy is not None
            else RetryPolicy(retries=4, base_delay=0.1, backoff_factor=2.0, max_delay=2.0)
        )
        self.probe_timeout = probe_timeout
        self.reports: list[RecoveryReport] = []
        #: destinations whose protocol envelopes exhausted their retry
        #: budget, with the exhaustion count — fed by :meth:`watch`,
        #: drained by :meth:`process_suspects`.
        self.suspects: dict[str, int] = {}
        self._watching = False
        self._prober = Endpoint(f"chaos-prober-{next(_prober_ids)}")
        service.network.join(self._prober)

    # -- envelope-death subscription -----------------------------------------

    def watch(self) -> "RecoveryCoordinator":
        """Let the protocol lane report dead destinations itself.

        Subscribes to the service's envelope-death notifications: any
        envelope that burns its whole :class:`RetryPolicy` adds its
        destination to :attr:`suspects`.  The listener only records —
        the exhaustion fires inside the driving coroutine, where probing
        or recovering would re-enter the event loop — and
        :meth:`process_suspects` later confirms each suspect with the
        usual backoff probes and recovers the ones that really are dead.
        Idempotent; returns ``self`` for chaining.
        """
        if not self._watching:
            self.svc.add_envelope_death_listener(self._on_envelope_death)
            self._watching = True
        return self

    def unwatch(self) -> None:
        """Stop recording envelope deaths (keeps existing suspects)."""
        if self._watching:
            self.svc.remove_envelope_death_listener(self._on_envelope_death)
            self._watching = False

    def _on_envelope_death(self, dest: str, what: str, attempts: int) -> None:
        self.suspects[dest] = self.suspects.get(dest, 0) + 1

    def process_suspects(
        self, strategy: str = "merge"
    ) -> dict[str, RecoveryReport | None]:
        """Confirm-and-recover every recorded suspect, then forget them.

        Each suspect gets the full :meth:`recover_dead_leaf` treatment:
        backoff-spaced liveness probes first (a destination that answers
        any probe was merely slow — transient loss, not a crash — and
        maps to ``None``), then the chosen recovery strategy for the
        confirmed-dead.  Suspects that are no longer live leaves (e.g. a
        garbage-collected retirement alias) are skipped entirely.
        """
        results: dict[str, RecoveryReport | None] = {}
        for server_id in sorted(self.suspects):
            server = self.svc.servers.get(server_id)
            if server is None or not server.is_leaf:
                continue
            results[server_id] = self.recover_dead_leaf(server_id, strategy=strategy)
        self.suspects.clear()
        return results

    # -- detection -----------------------------------------------------------

    async def _probe(self, server_id: str) -> bool:
        """One liveness probe; ``True`` iff the server answered in time."""
        request_id = self._prober.next_request_id()
        try:
            res = await self._prober.request(
                server_id,
                m.PingReq(request_id=request_id, reply_to=self._prober.address),
                timeout=self.probe_timeout,
            )
        except TransportError:
            return False
        return isinstance(res, m.PingRes)

    def probe_alive(self, server_id: str) -> bool:
        """Single-probe liveness check (no retries)."""
        return self.svc.run(self._probe(server_id))

    def confirm_dead(self, server_id: str) -> tuple[bool, int, float]:
        """Probe with backoff until an answer or the policy is exhausted.

        Returns ``(dead, attempts, elapsed_virtual_seconds)`` — the
        detection cost every recovery report carries.  A server that
        answers any probe is *not* dead (transient loss tolerated).
        """
        policy = self.probe_policy
        svc = self.svc
        rng = getattr(svc.network, "_rng", None)

        async def _confirm() -> tuple[bool, int, float]:
            start = svc.loop.now
            attempts = 0
            for attempt in range(policy.retries + 1):
                if attempt:
                    delay = policy.delay_before(attempt, rng=rng)
                    if delay > 0.0:
                        await svc.loop.sleep(delay)
                attempts += 1
                if await self._probe(server_id):
                    return False, attempts, svc.loop.now - start
            return True, attempts, svc.loop.now - start

        return svc.run(_confirm())

    # -- repair --------------------------------------------------------------

    def abort_in_flight_for(self, *server_ids: str) -> int:
        """Abort every in-flight migration touching any of the servers.

        A crash inside a migration's copy or dual-write window is
        recovered by *discarding*: nothing pre-cutover is visible to
        routing (staged stores are off-network, the epoch untouched), so
        the abort is exact — the re-planned migration after recovery
        starts from clean state.  Returns how many were aborted.
        """
        doomed = [
            migration
            for migration in list(self.executor.in_flight)
            if migration.busy & set(server_ids)
        ]
        for migration in doomed:
            self.executor.abort(migration)
        return len(doomed)

    def recover_leaf(self, server_id: str, strategy: str = "merge") -> RecoveryReport:
        """Re-home a dead leaf's region; returns the recovery report.

        Call after :meth:`confirm_dead`.  Both strategies leave the
        cluster with exactly one agent per object and every live server
        at the current topology epoch; neither can lose or duplicate a
        sighting — sightings are soft state that the next position
        reports rebuild (the paper restores volatile state "as position
        update requests come in"), while the visitor records that make
        those reports land travel through the WAL.
        """
        svc = self.svc
        server = svc.servers.get(server_id)
        if server is None or not server.is_leaf:
            raise LocationServiceError(f"{server_id!r} is not a live leaf")
        if not svc.network.is_down(server_id):
            raise LocationServiceError(f"{server_id!r} is not down")
        if strategy == "restart":
            report = self._recover_restart(server_id, 0, 0.0)
        elif strategy == "merge":
            report = self._recover_merge(server_id, 0, 0.0)
        else:
            raise LocationServiceError(f"unknown recovery strategy {strategy!r}")
        self.reports.append(report)
        return report

    def recover_dead_leaf(
        self, server_id: str, strategy: str = "merge"
    ) -> RecoveryReport | None:
        """Detect-then-repair in one call: probe with backoff, and when
        the leaf really is dead, recover it.  Returns ``None`` when the
        server answered a probe (nothing to do)."""
        dead, attempts, elapsed = self.confirm_dead(server_id)
        if not dead:
            return None
        report = self.recover_leaf(server_id, strategy=strategy)
        report = RecoveryReport(
            server_id=report.server_id,
            strategy=report.strategy,
            detection_attempts=attempts,
            detection_time_s=elapsed,
            replayed_records=report.replayed_records,
            moved=report.moved,
            new_home=report.new_home,
            new_homes=report.new_homes,
        )
        self.reports[-1] = report
        return report

    def recover_apex(self, new_root_id: str | None = None) -> RecoveryReport | None:
        """Promote a standby apex when the hierarchy root is unreachable.

        The PR-6 strategies assume a healthy apex to re-route through; a
        severed *root* breaks that assumption — no parent exists to merge
        into and an in-place restart cannot undo a network partition.
        Promotion closes the gap: after the usual backoff probes confirm
        the root unreachable, a fresh interior server is spawned at a new
        address with the root's exact service area and children, the old
        apex's surviving visitor WAL (Section 5 — the forwarding log
        every path through the root wrote) is replayed into it, and the
        children are re-parented under a bumped topology epoch.  Leaf
        traffic never stops (devices talk to leaves, not the apex);
        cross-subtree routing resumes the moment the standby is adopted.
        The severed root becomes a stale relic: nothing routes to it
        under the new topology, and if it later reconnects, its
        old-epoch chatter is exactly what the receive-path stale horizon
        quarantines.  Returns ``None`` when the root answered a probe.
        """
        svc = self.svc
        h = svc.hierarchy
        root_id = h.root_id
        dead, attempts, elapsed = self.confirm_dead(root_id)
        if not dead:
            return None
        if new_root_id is None:
            new_root_id = f"{root_id}-standby"
        self.abort_in_flight_for(root_id)
        old_config = h.config(root_id)
        configs = h.configs
        del configs[root_id]
        configs[new_root_id] = dataclasses.replace(old_config, server_id=new_root_id)
        for child in old_config.children:
            configs[child.server_id] = dataclasses.replace(
                configs[child.server_id], parent=new_root_id
            )
        promoted = Hierarchy(configs, epoch=h.epoch + 1)
        # The relic leaves the service's registry *before* the adoption
        # bumps live servers' epochs, so whatever it says after a heal
        # is stamped with the topology it was severed under.
        old_root = svc.servers.pop(root_id)
        standby = svc.spawn_server(configs[new_root_id])
        recovered = VisitorDB.recover(old_root.visitors.store)
        standby.visitors = recovered
        replayed = len(recovered)
        # Anti-entropy: the WAL snapshot predates the outage, and a
        # cross-subtree handover that committed leaf-to-leaf while the
        # apex was unreachable never got its path update through — the
        # children's own visitor tables are the live truth, so their
        # records override the replayed ones.  Only records meaning "my
        # subtree agents this object" count: a leaf child must hold the
        # *leaf* record (an old agent keeps a §5 forwarding pointer to
        # the new one after a handover), an interior child a forward
        # ref pointing *down* into its own subtree.
        for child in old_config.children:
            child_server = svc.servers.get(child.server_id)
            if child_server is None:
                continue
            visitors = child_server.visitors
            for object_id in list(visitors.object_ids()):
                if child_server.is_leaf:
                    if visitors.leaf_record(object_id) is None:
                        continue
                else:
                    ref = visitors.forward_ref(object_id)
                    if ref is None or h.parent_of(ref) != child.server_id:
                        continue
                standby.visitors.insert_forward(object_id, child.server_id)
        # Re-parent the live children: their own config records drive
        # upward routing (path updates, escalating fan-outs), so the
        # hierarchy swap alone would leave them talking to the relic.
        for child in old_config.children:
            child_server = svc.servers.get(child.server_id)
            if child_server is not None:
                child_server.config = configs[child.server_id]
        svc.adopt_hierarchy(promoted)
        # Scoped no-op unless some leaf really cached a route through
        # the old apex address.
        svc.broadcast_cache_invalidation(forget=(root_id,))
        if self.monitor is not None:
            self.monitor.forget_server(root_id)
        report = RecoveryReport(
            server_id=root_id,
            strategy="promote",
            detection_attempts=attempts,
            detection_time_s=elapsed,
            replayed_records=replayed,
            moved=0,
            new_home=new_root_id,
        )
        self.reports.append(report)
        return report

    def _recover_restart(
        self, server_id: str, attempts: int, elapsed: float
    ) -> RecoveryReport:
        self.abort_in_flight_for(server_id)
        server = self.svc.restart_server(server_id)
        replayed = sum(1 for _ in server.store.visitors.leaf_records())
        return RecoveryReport(
            server_id=server_id,
            strategy="restart",
            detection_attempts=attempts,
            detection_time_s=elapsed,
            replayed_records=replayed,
            moved=0,
            new_home=server_id,
        )

    def _recover_merge(
        self, server_id: str, attempts: int, elapsed: float
    ) -> RecoveryReport:
        svc = self.svc
        h = svc.hierarchy
        parent_id = h.parent_of(server_id)
        if parent_id is None:
            raise LocationServiceError(
                f"{server_id!r} has no parent to merge into — use the "
                "'restart' strategy for a root leaf"
            )
        siblings = h.siblings_of(server_id)
        children = tuple(sorted((server_id, *siblings)))
        if any(not svc.servers[child].is_leaf for child in children):
            raise LocationServiceError(
                f"siblings of {server_id!r} are not all leaves — merge "
                "recovery needs a mergeable sibling set"
            )
        # A crash inside a migration window is recovered by discarding
        # the window first (exact: pre-cutover state was never routable).
        self.abort_in_flight_for(parent_id, *children)

        plan = MergePlan(
            parent_id=parent_id, children=children, reason=f"recover {server_id}"
        )
        migration = self.executor.begin(plan)
        # Stage the live siblings' exports first, then fill the gaps from
        # the dead leaf's WAL: the crashed store exports nothing (its
        # sightings died with the process), but its Section 5 visitor log
        # survives — replaying the leaf records into the staging store
        # makes the parent agent-of-record for every visitor the dead
        # leaf tracked.  Records a live sibling already owns win (an
        # object mid-handover at crash time has exactly one agent).
        self.executor.step(migration)
        dead = svc.servers[server_id]
        recovered = VisitorDB.recover(dead.store.visitors.store)
        staging = migration.staging[parent_id]
        replayed = 0
        for record in recovered.leaf_records():
            if record.object_id not in staging.visitors:
                staging.visitors.insert_leaf(
                    record.object_id, record.offered_acc, record.reg_info
                )
                replayed += 1
        report = self.executor.cutover(migration)
        # The dead child's retirement alias cannot forward (the address
        # is down) — garbage-collect it so stale envelopes re-route
        # through the hierarchy root instead of timing out against it.
        svc.drop_retired(server_id)
        if self.monitor is not None:
            self.monitor.forget_server(server_id)
        return RecoveryReport(
            server_id=server_id,
            strategy="merge",
            detection_attempts=attempts,
            detection_time_s=elapsed,
            replayed_records=replayed,
            moved=report.moved,
            new_home=parent_id,
            new_homes=dict(report.new_homes),
        )
