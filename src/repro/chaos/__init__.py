"""Chaos engineering layer: fault injection and crash-exact recovery.

The paper's availability argument (Sections 5 and 7) is structural:
visitor records — the forwarding pointers and leaf registrations that
make the hierarchy routable — live in persistent storage, while
sightings are *soft state* that expires and is rebuilt "as position
update requests come in".  This package turns that argument into a
tested property of the reproduction.

Fault model
-----------

Faults are injected at two layers, both fully accounted in
:class:`~repro.runtime.base.NetworkStats` (``messages_dropped``,
``messages_duplicated``, ``faults_injected``):

* **Link faults** — :class:`FaultInjector` installs per-link
  :class:`LinkFaults` rules on a :class:`~repro.runtime.simnet.
  SimNetwork` or :class:`~repro.runtime.asyncio_rt.AsyncioNetwork`:
  probabilistic drops, fixed extra delay, per-message jitter (which
  reorders deliveries relative to send order), duplicated deliveries,
  and severed links.  :meth:`FaultInjector.partition` severs every link
  between two server groups while links within each group — and the
  device↔leaf edges in neither group — stay up.
* **Process faults** — :meth:`~repro.core.service.LocationService.
  crash_server` kills a whole server: the network drops everything to
  and from the address and the leaf's volatile state (sightings,
  spatial index, §6.5 caches) is wiped.  The persistent visitor WAL
  survives, exactly like a real process dying mid-write over a durable
  :class:`~repro.storage.persistence.FileStore` (tmp-file + atomic
  rename snapshots; a torn trailing append is skipped on replay, not
  fatal).

What "exact recovery" guarantees
--------------------------------

Recovery — :meth:`~repro.core.service.LocationService.restart_server`
in place, or :class:`RecoveryCoordinator` re-homing a dead region via
the merge migration path — restores the cluster to a state
*indistinguishable* from one that never crashed, once the report
stream has run one full cycle:

* **No lost sightings.**  Every visitor the dead server tracked is
  replayed from its WAL (into the restarted server, or into the merge
  staging store so the parent becomes agent-of-record), so the next
  position report finds a registered visitor and re-creates the
  sighting.  Reports that raced the crash are NACKed, kept at their old
  agent, and retried — never silently dropped.
* **No duplicated sightings.**  One agent per object, enforced by
  construction: a merge folds every candidate record into one staging
  store (live siblings' exports win over WAL replay), and
  :meth:`~repro.core.service.LocationService.check_consistency` proves
  it after every scenario.
* **Migration crashes roll forward or discard — never half-apply.**
  Pre-cutover (copy or dual-write phase) nothing about a migration is
  routable — staged stores are off-network and the topology epoch is
  untouched — so :meth:`~repro.cluster.migration.MigrationExecutor.
  abort` discards it exactly.  Post-cutover the epoch has bumped and
  the staged WAL is the new server's durable state, so a restart rolls
  forward.  There is no window in which a crash can split the
  difference.
* **Reconvergence is bounded and measured.**  The cutover's scoped
  ``CacheInvalidate`` broadcast repairs §6.5 caches and forwarding
  aliases; the chaos scenarios (:mod:`repro.sim.chaos`) measure
  detection time, recovery ticks, cache-staleness windows and
  partition reconvergence ticks, and the CI gate
  (``scripts/bench_check.py`` over ``BENCH_PR6.json``) holds them to
  zero lost / zero duplicated sightings and bounded recovery.
"""

from repro.chaos.faults import FaultInjector, LinkFaults, inject_crash
from repro.chaos.recovery import RecoveryCoordinator, RecoveryReport

__all__ = [
    "FaultInjector",
    "LinkFaults",
    "RecoveryCoordinator",
    "RecoveryReport",
    "inject_crash",
]
