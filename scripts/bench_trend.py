#!/usr/bin/env python
"""Nightly bench time-series: append, report, and trend-gate.

``scripts/bench_check.py`` gates each night's artifacts against fixed
thresholds, so a single-night collapse fails loudly — but a slow leak
(say 3% a night) sails under every fixed threshold until the margin is
gone.  This script closes that hole with a *trend* gate over a rolling
time-series of the key acceptance metrics:

* ``--append`` extracts :data:`TRACKED_METRICS` from the freshly
  regenerated ``BENCH_*.json`` artifacts under ``--root`` and appends
  one entry to the series file (``BENCH_SERIES.json``).
* ``--report`` prints the trajectory table: one row per metric, one
  column per recorded night, with the drift since the oldest shown run.
* ``--check`` fails (exit 1) when any metric has drifted monotonically
  in its *worse* direction across the last three appended runs **and**
  the cumulative drift over those three nights exceeds 10%.  Fewer
  than four entries is always green — the gate needs a baseline night
  plus three drifting nights before it can call a trend.

Series schema (``schema: 1``)::

    {
      "schema": 1,
      "series": [
        {"run": "<ci run id>", "label": "<yyyy-mm-dd>",
         "metrics": {"pr10.tick_speedup": 49.3, ...}},
        ...
      ]
    }

A metric missing on some night (artifact absent, key null) is recorded
as ``null``; a null breaks any monotone run, so a flaky artifact can
delay the gate but never trip it.  The series is pruned to the newest
:data:`MAX_ENTRIES` entries on append, so the artifact stays small.

Usage (the nightly workflow's ``bench-trend`` job)::

    python scripts/bench_trend.py --append --root bench-artifacts \
        --run "$GITHUB_RUN_ID" --label "$(date -u +%F)"
    python scripts/bench_trend.py --report
    python scripts/bench_trend.py --check
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 1

#: Rolling-window cap: nightly appends stay bounded (~4 months).
MAX_ENTRIES = 120

#: Monotone-drift window: a baseline night + this many worsening nights.
TREND_NIGHTS = 3

#: Cumulative worse-direction drift (fraction) that trips the gate.
DRIFT_LIMIT = 0.10

#: metric name -> (artifact filename, dotted key path, better direction).
#: One acceptance-critical number per measuring PR lane; ``higher`` means
#: larger is better (a drop is drift), ``lower`` the opposite.
TRACKED_METRICS: dict[str, tuple[str, str, str]] = {
    "pr2.load_drop_factor": (
        "BENCH_PR2.json",
        "scenarios.flash_crowd.load_drop_factor",
        "higher",
    ),
    "pr3.message_reduction_factor": (
        "BENCH_PR3.json",
        "message_reduction_factor",
        "higher",
    ),
    "pr3.tick_speedup": ("BENCH_PR3.json", "tick_speedup", "higher"),
    "pr4.migration_throughput_ratio": (
        "BENCH_PR4.json",
        "migration_throughput_ratio",
        "higher",
    ),
    "pr5.round_reduction_ratio": (
        "BENCH_PR5.json",
        "round_reduction_ratio",
        "lower",
    ),
    "pr7.min_throughput_ratio": (
        "BENCH_PR7.json",
        "min_throughput_ratio",
        "higher",
    ),
    "pr10.tick_speedup": ("BENCH_PR10.json", "tick_speedup", "higher"),
    "pr10.updates_per_second": (
        "BENCH_PR10.json",
        "columnar.updates_per_second",
        "higher",
    ),
}


def _lookup(payload: dict, dotted: str):
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def extract_metrics(root: pathlib.Path) -> dict[str, float | None]:
    """Tonight's tracked metrics from the artifacts under ``root``.

    Missing artifacts, missing keys and non-finite values all map to
    ``None`` — recorded, visible in the report, never a crash.
    """
    metrics: dict[str, float | None] = {}
    payloads: dict[str, dict | None] = {}
    for name, (filename, dotted, _direction) in TRACKED_METRICS.items():
        if filename not in payloads:
            path = root / filename
            try:
                payloads[filename] = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payloads[filename] = None
        payload = payloads[filename]
        value = _lookup(payload, dotted) if payload is not None else None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            metrics[name] = None
        elif not math.isfinite(value):
            metrics[name] = None
        else:
            metrics[name] = round(float(value), 6)
    return metrics


def load_series(path: pathlib.Path) -> dict:
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "series": []}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported series schema {data.get('schema')!r} "
            f"(this script speaks schema {SCHEMA_VERSION})"
        )
    return data


def save_series(path: pathlib.Path, data: dict) -> None:
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def append_entry(data: dict, run: str, label: str, metrics: dict) -> None:
    data["series"].append({"run": run, "label": label, "metrics": metrics})
    del data["series"][:-MAX_ENTRIES]


def _drift(first: float, last: float, direction: str) -> float:
    """Worse-direction drift as a fraction of the baseline (>=0)."""
    if first == 0:
        return 0.0
    change = (last - first) / abs(first)
    return -change if direction == "higher" else change


def trend_failures(data: dict) -> list[str]:
    """Metrics whose last ``TREND_NIGHTS`` runs drift monotonically worse.

    The window is the last ``TREND_NIGHTS + 1`` entries: a baseline
    night and three nights each strictly worse than the one before,
    with cumulative drift beyond :data:`DRIFT_LIMIT`.  Any ``None`` in
    the window breaks the chain.
    """
    series = data["series"]
    if len(series) < TREND_NIGHTS + 1:
        return []
    window = series[-(TREND_NIGHTS + 1):]
    failures = []
    for name, (_file, _dotted, direction) in TRACKED_METRICS.items():
        values = [entry["metrics"].get(name) for entry in window]
        if any(v is None for v in values):
            continue
        worse = (
            all(b < a for a, b in zip(values, values[1:]))
            if direction == "higher"
            else all(b > a for a, b in zip(values, values[1:]))
        )
        if not worse:
            continue
        drift = _drift(values[0], values[-1], direction)
        if drift > DRIFT_LIMIT:
            failures.append(
                f"{name}: {TREND_NIGHTS}-night monotone drift "
                f"{drift * 100:.1f}% (> {DRIFT_LIMIT * 100:.0f}%): "
                + " -> ".join(f"{v:g}" for v in values)
            )
    return failures


def print_report(data: dict, tail: int = 8) -> None:
    """The trajectory table: metrics down, the newest runs across."""
    series = data["series"][-tail:]
    if not series:
        print("series is empty — nothing to report")
        return
    labels = [entry["label"] for entry in series]
    name_width = max(len(name) for name in TRACKED_METRICS)
    cells_for = lambda entry: (  # noqa: E731 — local formatting helper
        "-" if (v := entry["metrics"].get(name)) is None else f"{v:,.3f}"
        for name in TRACKED_METRICS
    )
    col_width = max(
        [10]
        + [len(label) for label in labels]
        + [len(cell) for entry in series for cell in cells_for(entry)]
    )
    header = "metric".ljust(name_width) + "".join(
        f"  {label:>{col_width}s}" for label in labels
    ) + f"  {'drift':>8s}"
    print(header)
    print("-" * len(header))
    for name, (_file, _dotted, direction) in TRACKED_METRICS.items():
        values = [entry["metrics"].get(name) for entry in series]
        cells = "".join(
            f"  {('-' if v is None else f'{v:,.3f}'):>{col_width}s}" for v in values
        )
        shown = [v for v in values if v is not None]
        if len(shown) >= 2:
            drift = _drift(shown[0], shown[-1], direction)
            trend = f"{-drift * 100:+.1f}%"
        else:
            trend = "-"
        print(f"{name:{name_width}s}{cells}  {trend:>8s}")
    print(
        f"\n{len(data['series'])} run(s) recorded; drift column is the "
        f"better(+)/worse(-) change across the shown window"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--series",
        type=pathlib.Path,
        default=ROOT / "BENCH_SERIES.json",
        help="series file (default: repo-root BENCH_SERIES.json)",
    )
    parser.add_argument(
        "--append", action="store_true", help="append tonight's metrics"
    )
    parser.add_argument(
        "--report", action="store_true", help="print the trajectory table"
    )
    parser.add_argument(
        "--check", action="store_true", help="fail on sustained monotone drift"
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=ROOT,
        help="directory holding tonight's BENCH_*.json (default: repo root)",
    )
    parser.add_argument("--run", default="local", help="run id recorded on --append")
    parser.add_argument(
        "--label", default="tonight", help="display label recorded on --append"
    )
    args = parser.parse_args(argv)
    if not (args.append or args.report or args.check):
        parser.error("nothing to do: pass --append, --report and/or --check")

    data = load_series(args.series)

    if args.append:
        metrics = extract_metrics(args.root)
        append_entry(data, args.run, args.label, metrics)
        save_series(args.series, data)
        recorded = sum(1 for v in metrics.values() if v is not None)
        print(
            f"appended run {args.run!r} ({args.label}): "
            f"{recorded}/{len(metrics)} metrics recorded, "
            f"{len(data['series'])} entries in {args.series}"
        )

    if args.report:
        if args.append:
            print()
        print_report(data)

    if args.check:
        failures = trend_failures(data)
        if failures:
            print("\nbench trend gate FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        nights = len(data["series"])
        print(
            f"\nbench trend gate passed ({nights} run(s); "
            f"gate needs {TREND_NIGHTS + 1} to call a trend)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
