#!/usr/bin/env python
"""CI perf-regression gate: validate every ``BENCH_*.json`` artifact.

Each bench artifact documents acceptance numbers in its producing
bench's docstring (``benchmarks/bench_*.py``); until now nothing
*checked* them after CI regenerated the artifacts, so a regression in
any number would merge silently.  This script encodes the documented
thresholds and fails (exit code 1) when any regenerated artifact misses
one:

* ``BENCH_PR1.json`` — every spatial index's ``update_many`` fast path
  must beat the remove+insert baseline (speedup > 1).
* ``BENCH_PR2.json`` — flash-crowd ``load_drop_factor`` ≥ 2 and zero
  lost sightings on every elastic lane.
* ``BENCH_PR3.json`` — ``message_reduction_factor`` ≥ 2,
  ``tick_speedup`` > 1, zero lost sightings on both lanes.
* ``BENCH_PR4.json`` — ``stall_ticks_overlapped`` == 0,
  ``migration_throughput_ratio`` ≥ 0.8, zero lost on all lanes.
* ``BENCH_PR5.json`` — ``round_reduction_ratio`` ≤ 0.5,
  ``migration_throughput_ratio`` ≥ 0.8, zero lost on both lanes.
* ``BENCH_PR6.json`` — zero lost **and** zero duplicated sightings
  after every injected fault class, consistent epochs everywhere,
  ``max_recovery_ticks`` ≤ 3, ``reconvergence_ticks`` ≤ 3.
* ``BENCH_PR7.json`` — zero lost sightings on every real-transport
  lane (in-process, multi-process UDP, and UDP with injected loss),
  and ``min_throughput_ratio`` ≥ 0.25 (the multi-process lane pays
  real serialization + syscalls — the gate catches collapse such as a
  retry storm, not the expected constant factor).
* ``BENCH_PR9.json`` — under 2% frame corruption + 2% stale-epoch
  replay on every runtime (sim, asyncio, real UDP sockets): zero
  corrupted records accepted, zero lost and zero duplicated sightings,
  a non-vacuous defense (faults fired and were caught on every lane),
  and root-partition apex promotion reconverging within 5 ticks with
  every cross-subtree query answered before the heal.
* ``BENCH_PR10.json`` — the columnar hot path measures a population of
  at least 10^6 objects, beats the object backend's per-object tick
  cost by ≥ 5x (``tick_speedup``), returns ``answers_identical`` to
  the object backend on every probed query, and keeps the sketch-mode
  ``LoadMonitor`` footprint bounded (``load_monitor_bounded``).

Usage::

    python scripts/bench_check.py            # check repo-root artifacts
    python scripts/bench_check.py --root DIR # check artifacts elsewhere

A missing artifact is a failure too — the gate exists precisely so the
trajectory cannot quietly shrink.
"""

from __future__ import annotations

import argparse
import json
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent


class Check:
    """One named threshold over one artifact's payload."""

    def __init__(self, description: str, probe) -> None:
        self.description = description
        self.probe = probe  # payload -> (ok, observed-value string)

    def run(self, payload: dict) -> tuple[bool, str]:
        try:
            return self.probe(payload)
        except (KeyError, TypeError, IndexError) as exc:
            return False, f"missing field ({exc!r})"


def _threshold(value, ok: bool) -> tuple[bool, str]:
    return ok, str(value)


def _pr1_speedups(payload):
    worst = None
    for name, index in payload["indexes"].items():
        speedup = index["speedup_vs_baseline"]["update_many"]
        if worst is None or speedup < worst[1]:
            worst = (name, speedup)
    return _threshold(
        f"{worst[1]:.2f}x ({worst[0]})", worst is not None and worst[1] > 1.0
    )


def _pr2_lost(payload):
    lost = {
        name: scenario["elastic"]["invariants"]["lost_sightings"]
        for name, scenario in payload["scenarios"].items()
    }
    return _threshold(lost, all(count == 0 for count in lost.values()))


def _lanes_lost(payload):
    lost = {
        lane: result["invariants"]["lost_sightings"]
        for lane, result in payload["lanes"].items()
    }
    return _threshold(lost, all(count == 0 for count in lost.values()))


CHECKS: dict[str, list[Check]] = {
    "BENCH_PR1.json": [
        Check("update_many speedup vs remove+insert > 1 (all indexes)", _pr1_speedups),
    ],
    "BENCH_PR2.json": [
        Check(
            "flash_crowd load_drop_factor >= 2",
            lambda p: _threshold(
                p["scenarios"]["flash_crowd"]["load_drop_factor"],
                p["scenarios"]["flash_crowd"]["load_drop_factor"] >= 2.0,
            ),
        ),
        Check("zero lost sightings (all elastic scenarios)", _pr2_lost),
    ],
    "BENCH_PR3.json": [
        Check(
            "message_reduction_factor >= 2",
            lambda p: _threshold(
                p["message_reduction_factor"], p["message_reduction_factor"] >= 2.0
            ),
        ),
        Check(
            "tick_speedup > 1",
            lambda p: _threshold(p["tick_speedup"], p["tick_speedup"] > 1.0),
        ),
        Check("zero lost sightings (both lanes)", _lanes_lost),
    ],
    "BENCH_PR4.json": [
        Check(
            "stall_ticks_overlapped == 0",
            lambda p: _threshold(
                p["stall_ticks_overlapped"], p["stall_ticks_overlapped"] == 0
            ),
        ),
        Check(
            "migration_throughput_ratio >= 0.8",
            lambda p: _threshold(
                p["migration_throughput_ratio"],
                p["migration_throughput_ratio"] is not None
                and p["migration_throughput_ratio"] >= 0.8,
            ),
        ),
        Check(
            "zero lost sightings + consistency (all lanes)",
            lambda p: _threshold(
                p["zero_lost_all_lanes"], bool(p["zero_lost_all_lanes"])
            ),
        ),
    ],
    "BENCH_PR5.json": [
        Check(
            "round_reduction_ratio <= 0.5 (v2 settles in half the rounds)",
            lambda p: _threshold(
                p["round_reduction_ratio"],
                p["round_reduction_ratio"] is not None
                and p["round_reduction_ratio"] <= 0.5,
            ),
        ),
        Check(
            "v2 migration_throughput_ratio >= 0.8",
            lambda p: _threshold(
                p["migration_throughput_ratio"],
                p["migration_throughput_ratio"] is not None
                and p["migration_throughput_ratio"] >= 0.8,
            ),
        ),
        Check(
            "zero lost sightings + consistency (both lanes)",
            lambda p: _threshold(
                p["zero_lost_all_lanes"], bool(p["zero_lost_all_lanes"])
            ),
        ),
    ],
    "BENCH_PR6.json": [
        Check(
            "zero lost sightings (every injected fault class)",
            lambda p: _threshold(
                {
                    name: result["lost_sightings"]
                    for name, result in p["scenarios"].items()
                },
                bool(p["zero_lost_all_scenarios"]),
            ),
        ),
        Check(
            "zero duplicated sightings (every injected fault class)",
            lambda p: _threshold(
                {
                    name: result["duplicated_sightings"]
                    for name, result in p["scenarios"].items()
                },
                bool(p["zero_duplicated_all_scenarios"]),
            ),
        ),
        Check(
            "consistent topology epoch everywhere after recovery",
            lambda p: _threshold(
                p["epoch_consistent_all_scenarios"],
                bool(p["epoch_consistent_all_scenarios"]),
            ),
        ),
        Check(
            "max_recovery_ticks <= 3",
            lambda p: _threshold(
                p["max_recovery_ticks"],
                p["max_recovery_ticks"] is not None
                and p["max_recovery_ticks"] <= 3,
            ),
        ),
        Check(
            "partition reconvergence_ticks <= 3",
            lambda p: _threshold(
                p["reconvergence_ticks"],
                p["reconvergence_ticks"] is not None
                and p["reconvergence_ticks"] <= 3,
            ),
        ),
    ],
    "BENCH_PR7.json": [
        Check(
            "zero lost sightings (all real-transport lanes, incl. UDP loss)",
            lambda p: _threshold(
                p["lanes_lost"], bool(p["zero_lost_all_lanes"])
            ),
        ),
        Check(
            "multi-process min_throughput_ratio >= 0.25 (no collapse)",
            lambda p: _threshold(
                p["min_throughput_ratio"],
                p["min_throughput_ratio"] is not None
                and p["min_throughput_ratio"] >= 0.25,
            ),
        ),
        Check(
            "udp_loss lane actually lost datagrams (fault was real)",
            lambda p: _threshold(
                p["udp_loss"]["driver_messages_dropped"],
                p["udp_loss"]["driver_messages_dropped"] > 0,
            ),
        ),
    ],
    "BENCH_PR9.json": [
        Check(
            "zero corrupted records accepted (all byzantine lanes)",
            lambda p: _threshold(
                {
                    name: lane["corrupted_accepted"]
                    for name, lane in p["lanes"].items()
                },
                bool(p["zero_corrupted_accepted_all_lanes"]),
            ),
        ),
        Check(
            "zero lost sightings under corruption (all byzantine lanes)",
            lambda p: _threshold(
                {
                    name: lane["lost_sightings"]
                    for name, lane in p["lanes"].items()
                },
                bool(p["zero_lost_all_lanes"]),
            ),
        ),
        Check(
            "zero duplicated sightings under replay (all byzantine lanes)",
            lambda p: _threshold(
                {
                    name: lane["duplicated_sightings"]
                    for name, lane in p["lanes"].items()
                },
                bool(p["zero_duplicated_all_lanes"]),
            ),
        ),
        Check(
            "defense exercised on every lane (faults fired AND were caught)",
            lambda p: _threshold(
                p["defense_catches"], bool(p["defense_exercised_all_lanes"])
            ),
        ),
        Check(
            "root-partition reconvergence_ticks <= 5",
            lambda p: _threshold(
                p["root_reconvergence_ticks"],
                p["root_reconvergence_ticks"] is not None
                and p["root_reconvergence_ticks"] <= 5,
            ),
        ),
        Check(
            "root partition: zero lost + zero duplicated after promotion",
            lambda p: _threshold(
                {
                    "lost": p["root_partition"]["lost_sightings"],
                    "duplicated": p["root_partition"]["duplicated_sightings"],
                },
                p["root_partition"]["lost_sightings"] == 0
                and p["root_partition"]["duplicated_sightings"] == 0,
            ),
        ),
        Check(
            "every cross-subtree query answered before the heal",
            lambda p: _threshold(
                f"{p['root_partition']['cross_queries_answered_before_heal']}"
                f"/{p['root_partition']['cross_queries_before_heal']}",
                p["root_partition"]["cross_queries_before_heal"] > 0
                and p["root_partition"]["cross_queries_answered_before_heal"]
                == p["root_partition"]["cross_queries_before_heal"],
            ),
        ),
    ],
    "BENCH_PR10.json": [
        Check(
            "columnar population >= 1,000,000 objects",
            lambda p: _threshold(p["objects"], p["objects"] >= 1_000_000),
        ),
        Check(
            "tick_speedup >= 5 (per-object, vs object backend)",
            lambda p: _threshold(
                f"{p['tick_speedup']:.1f}x", p["tick_speedup"] >= 5.0
            ),
        ),
        Check(
            "answers identical to the object backend (all probes)",
            lambda p: _threshold(
                p["equivalence"]["mismatches"] or "no mismatches",
                bool(p["answers_identical"]),
            ),
        ),
        Check(
            "sketch-mode LoadMonitor footprint bounded",
            lambda p: _threshold(
                p["load_monitor"], bool(p["load_monitor_bounded"])
            ),
        ),
    ],
}


def check_artifacts(root: pathlib.Path) -> int:
    """Run every check; prints a table and returns the failure count."""
    failures = 0
    width = max(len(d.description) for checks in CHECKS.values() for d in checks)
    for filename, checks in CHECKS.items():
        path = root / filename
        print(filename)
        if not path.exists():
            print("  MISSING — regenerate with scripts/bench_smoke.py")
            failures += len(checks)
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"  UNREADABLE — {exc}")
            failures += len(checks)
            continue
        for check in checks:
            ok, observed = check.run(payload)
            status = "ok" if ok else "FAIL"
            print(f"  {status:4s} {check.description:{width}s}  [{observed}]")
            if not ok:
                failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=ROOT,
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    args = parser.parse_args(argv)
    failures = check_artifacts(args.root)
    if failures:
        print(f"\n{failures} bench acceptance check(s) FAILED")
        return 1
    print("\nall bench acceptance checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
