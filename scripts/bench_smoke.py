#!/usr/bin/env python
"""Quick perf smoke — refreshes every ``BENCH_PR*.json`` artifact.

The tier-1 test suite never runs benchmarks (bench files do not match
pytest's default collection), and the full pytest-benchmark suite takes
minutes.  This script is the middle ground:

* **PR1** — the small-displacement update measurement of
  ``bench_spatial_index.py`` plus one batched
  :class:`~repro.sim.scenario.MobilitySimulation` tick measure per index
  kind → ``BENCH_PR1.json``.
* **PR2** — the hotspot-rebalance measurement: the flash-crowd and
  commuter-rush scenarios run static and elastic, recording before/after
  per-server sustained load, split/merge counts and query latency →
  ``BENCH_PR2.json``.  The acceptance number is
  ``scenarios.flash_crowd.load_drop_factor`` (must be ≥ 2).
* **PR3** — the batched protocol lane: the commuter-rush scenario run
  over the per-report and batched lanes, comparing protocol-lane
  messages per tick and tick wall-clock → ``BENCH_PR3.json``.  The
  acceptance numbers are ``message_reduction_factor`` (must be ≥ 2) and
  ``tick_speedup`` (must be > 1).
* **PR4** — zero-stall elasticity: the festival-surge scenario run with
  phased overlapped migrations vs. the quiesced baseline →
  ``BENCH_PR4.json``.  The acceptance numbers are zero
  ``stall_ticks`` on the overlapped lanes, a
  ``migration_throughput_ratio`` ≥ 0.8, and zero lost sightings with
  ``consistency_ok`` across all lanes.
* **PR5** — planner v2: the hot-object-skew scenario run under the
  rate-weighted k-way planner vs. the count-based binary one →
  ``BENCH_PR5.json``.  The acceptance numbers are
  ``round_reduction_ratio`` ≤ 0.5 (v2 settles in at most half the
  migration rounds), ``migration_throughput_ratio`` ≥ 0.8 on the v2
  lane, and zero lost sightings on both lanes.
* **PR6** — the chaos suite: every injected fault class (leaf crash
  mid-tick, partition + heal, a crash in each migration phase) run
  with detection, recovery and reconvergence measured →
  ``BENCH_PR6.json``.  The acceptance numbers are
  ``zero_lost_all_scenarios`` and ``zero_duplicated_all_scenarios``
  (both true), ``max_recovery_ticks`` ≤ 3 and ``reconvergence_ticks``
  ≤ 3.
* **PR7** — the real-transport lane: both acceptance scenarios run
  in-process (asyncio runtime) and multi-process (one OS process per
  server, UDP sockets, versioned wire codec), plus a lossy-UDP lane
  recovered entirely by protocol retries → ``BENCH_PR7.json``.  The
  acceptance numbers are ``zero_lost_all_lanes`` (true — including
  over injected datagram loss) and ``min_throughput_ratio`` ≥ 0.25
  (multi-process reports/s must not collapse vs. in-process; the
  processes pay real serialization + syscalls, so the gate catches a
  retry storm, not the expected constant factor).
* **PR9** — the byzantine suite: 2% frame corruption + 2% stale-epoch
  replay on all three runtimes (SimNetwork, asyncio, real UDP sockets)
  plus the root-partition apex-promotion scenario →
  ``BENCH_PR9.json``.  The acceptance numbers are
  ``zero_corrupted_accepted_all_lanes``, ``zero_lost_all_lanes`` and
  ``zero_duplicated_all_lanes`` (all true),
  ``defense_exercised_all_lanes`` (the adversary was real and caught),
  and ``root_reconvergence_ticks`` ≤ 5.
* **PR10** — the columnar hot path: twin seeded populations through
  the columnar and object store backends, measuring tick throughput
  and cross-checking query answers exactly → ``BENCH_PR10.json``.
  The acceptance numbers are ``objects`` ≥ 10^6, ``tick_speedup`` ≥ 5
  (per-object-normalized), ``answers_identical`` and
  ``load_monitor_bounded`` (both true).

After every runner the freshly written artifact is re-loaded and its
acceptance keys are validated: a missing key or a NaN/Inf value makes
the script exit non-zero instead of silently writing a payload the
``bench_check.py`` gate would later trip over (or worse, miss — JSON
``NaN`` survives a round-trip through Python's parser).

Usage::

    python scripts/bench_smoke.py               # defaults, a few seconds
    python scripts/bench_smoke.py --objects 2000 --moves 2000 --rounds 2
    python scripts/bench_smoke.py --skip-pr1    # only the scenario benches
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))
sys.path.insert(0, str(ROOT / "src"))

import bench_spatial_index as bsi  # noqa: E402  (path set up above)
from benchreport import write_bench_json  # noqa: E402
from repro.sim.scenario import MobilitySimulation  # noqa: E402


def measure_tick(kind: str, objects: int, ticks: int, dt: float = 2.0) -> float:
    """Updates/s through the full batched sim tick (walkers + store)."""
    sim = MobilitySimulation.table1(object_count=objects, index_kind=kind, seed=5)
    sim.tick(dt)  # warm up caches and walker state
    start = time.perf_counter()
    sim.run(ticks, dt=dt)
    elapsed = time.perf_counter() - start
    return objects * ticks / elapsed


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def run_pr1(args) -> None:
    bsi.OBJECTS = args.objects
    bsi.FASTPATH_MOVES = args.moves

    header = f"{'index':10s} {'remove+insert':>14s} {'update':>12s} {'update_many':>12s} {'speedup':>8s} {'sim tick':>12s}"
    print(header)
    print("-" * len(header))
    indexes = {}
    for kind in bsi.INDEX_KINDS:
        row, best_ratio = bsi.measure_fastpath(kind, rounds=args.rounds)
        tick_rate = measure_tick(kind, objects=args.objects, ticks=args.ticks)
        print(
            f"{kind:10s} {row['baseline_remove_insert']:>12,.0f}/s "
            f"{row['update']:>10,.0f}/s {row['update_many']:>10,.0f}/s "
            f"{best_ratio:>7.2f}x {tick_rate:>10,.0f}/s"
        )
        indexes[kind] = {
            "updates_per_s": row,
            "speedup_vs_baseline": {
                "update": row["update"] / row["baseline_remove_insert"],
                "update_many": row["update_many"] / row["baseline_remove_insert"],
            },
            "sim_tick_updates_per_s": tick_rate,
        }

    path = write_bench_json(
        args.out,
        {
            "bench": "spatial-index update fast paths + batch pipeline (smoke)",
            "generated_by": "scripts/bench_smoke.py",
            "workload": {
                "objects": args.objects,
                "area_side_m": bsi.AREA_SIDE,
                "moves": args.moves,
                "displacement_m": bsi.DISPLACEMENT_M,
                "batch_size": bsi.FASTPATH_BATCH,
                "sim_ticks": args.ticks,
            },
            "indexes": indexes,
        },
    )
    print(f"\nwrote {path}")


def run_pr2(args) -> None:
    """The hotspot-rebalance measurement (elastic cluster layer)."""
    from repro.sim.elastic import elastic_benchmark_payload

    start = time.perf_counter()
    payload = elastic_benchmark_payload(seed=args.seed)
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = f"{'scenario':16s} {'static max':>12s} {'elastic max':>12s} {'drop':>7s} {'splits':>7s} {'merges':>7s} {'lost':>5s}"
    print(header)
    print("-" * len(header))
    for name, result in payload["scenarios"].items():
        static = result["static"]
        elastic = result["elastic"]
        print(
            f"{name:16s} {static['max_sustained_load_ops_per_s']:>10,.0f}/s "
            f"{elastic['max_sustained_load_ops_per_s']:>10,.0f}/s "
            f"{result['load_drop_factor']:>6.2f}x "
            f"{elastic['splits']:>7d} {elastic['merges']:>7d} "
            f"{elastic['invariants']['lost_sightings']:>5d}"
        )
    path = write_bench_json(args.out_pr2, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


def run_pr3(args) -> None:
    """The batched-protocol-lane measurement (envelopes vs. per-report)."""
    from repro.sim.elastic import protocol_batch_benchmark_payload

    start = time.perf_counter()
    payload = protocol_batch_benchmark_payload(seed=args.seed)
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = f"{'lane':12s} {'proto msgs/tick':>16s} {'tick wall':>10s} {'splits':>7s} {'merges':>7s} {'lost':>5s}"
    print(header)
    print("-" * len(header))
    for lane, result in payload["lanes"].items():
        print(
            f"{lane:12s} {result['protocol_messages_per_tick']:>16,.1f} "
            f"{result['tick_wall_clock_s'] * 1e3:>7,.0f} ms "
            f"{result['splits']:>7d} {result['merges']:>7d} "
            f"{result['invariants']['lost_sightings']:>5d}"
        )
    reduction = payload["message_reduction_factor"]
    speedup = payload["tick_speedup"]
    print(
        "message reduction: "
        + (f"{reduction:.1f}x" if reduction is not None else "n/a")
        + ", tick speedup: "
        + (f"{speedup:.2f}x" if speedup is not None else "n/a")
    )
    path = write_bench_json(args.out_pr3, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


def run_pr4(args) -> None:
    """The zero-stall measurement (overlapped vs. quiesced rebalance)."""
    from repro.sim.elastic import zero_stall_benchmark_payload

    start = time.perf_counter()
    payload = zero_stall_benchmark_payload(seed=args.seed)
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = (
        f"{'lane':22s} {'stalls':>7s} {'mig ticks':>10s} {'mig/steady':>11s} "
        f"{'splits':>7s} {'merges':>7s} {'epoch':>6s} {'invals':>7s} {'lost':>5s}"
    )
    print(header)
    print("-" * len(header))
    for lane, result in payload["lanes"].items():
        ratio = result["migration_throughput_ratio"]
        print(
            f"{lane:22s} {result['stall_ticks']:>7d} "
            f"{result['migration_tick_count']:>10d} "
            f"{ratio if ratio is not None else float('nan'):>11.3f} "
            f"{result['splits']:>7d} {result['merges']:>7d} "
            f"{result['topology_epoch']:>6d} "
            f"{result['invalidations_sent']:>7d} "
            f"{result['invariants']['lost_sightings']:>5d}"
        )
    print(
        f"overlapped stalls: {payload['stall_ticks_overlapped']}, "
        f"quiesced stalls: {payload['stall_ticks_quiesced']}, "
        f"migration throughput ratio: {payload['migration_throughput_ratio']}"
    )
    path = write_bench_json(args.out_pr4, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


def run_pr5(args) -> None:
    """The planner-v2 measurement (rate-weighted k-way vs. count binary)."""
    from repro.sim.elastic import planner_v2_benchmark_payload

    start = time.perf_counter()
    payload = planner_v2_benchmark_payload(seed=args.seed)
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = (
        f"{'lane':16s} {'rounds':>7s} {'splits':>7s} {'mig/steady':>11s} "
        f"{'leaves':>7s} {'chunk':>6s} {'lost':>5s}"
    )
    print(header)
    print("-" * len(header))
    for lane, result in payload["lanes"].items():
        ratio = result["migration_throughput_ratio"]
        print(
            f"{lane:16s} {result['rounds_to_balance']:>7d} "
            f"{result['splits']:>7d} "
            f"{ratio if ratio is not None else float('nan'):>11.3f} "
            f"{result['leaf_count_final']:>7d} "
            f"{result['copy_chunk_final']:>6d} "
            f"{result['invariants']['lost_sightings']:>5d}"
        )
    print(
        f"rounds to balance: v2 {payload['rounds_to_balance_v2']} vs "
        f"v1 {payload['rounds_to_balance_v1']} "
        f"(ratio {payload['round_reduction_ratio']}), "
        f"v2 migration throughput ratio: {payload['migration_throughput_ratio']}"
    )
    path = write_bench_json(args.out_pr5, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


def run_pr6(args) -> None:
    """The chaos-suite measurement (fault injection + exact recovery)."""
    from repro.sim.chaos import chaos_benchmark_payload

    start = time.perf_counter()
    payload = chaos_benchmark_payload(seed=args.seed)
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = (
        f"{'scenario':28s} {'faults':>7s} {'detect':>8s} {'rec ticks':>10s} "
        f"{'replayed':>9s} {'lost':>5s} {'dup':>4s} {'epoch':>6s}"
    )
    print(header)
    print("-" * len(header))
    for name, result in payload["scenarios"].items():
        detection = result.get("detection")
        detect = "-" if detection is None else "{0:.2f}s".format(detection["time_s"])
        print(
            f"{name:28s} {result['faults_injected']:>7d} "
            f"{detect:>8s} "
            f"{str(result.get('recovery_ticks', '-')):>10s} "
            f"{str(result.get('replayed_records', '-')):>9s} "
            f"{result['lost_sightings']:>5d} "
            f"{result['duplicated_sightings']:>4d} "
            f"{result['topology_epoch']:>6d}"
        )
    print(
        f"zero lost: {payload['zero_lost_all_scenarios']}, "
        f"zero duplicated: {payload['zero_duplicated_all_scenarios']}, "
        f"max recovery ticks: {payload['max_recovery_ticks']}, "
        f"reconvergence ticks: {payload['reconvergence_ticks']}, "
        f"cache staleness ticks: {payload['cache_staleness_ticks']}"
    )
    path = write_bench_json(args.out_pr6, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


def run_pr7(args) -> None:
    """The real-transport measurement (in-process vs. multi-process)."""
    from repro.net.scenario import socket_benchmark_payload

    start = time.perf_counter()
    payload = socket_benchmark_payload(seed=args.seed)
    payload["bench"] = "real-transport lane: sockets vs in-process (smoke)"
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = (
        f"{'scenario':16s} {'in-proc rep/s':>14s} {'multi-proc rep/s':>17s} "
        f"{'ratio':>6s} {'procs':>6s} {'lost':>5s}"
    )
    print(header)
    print("-" * len(header))
    for name, result in payload["scenarios"].items():
        print(
            f"{name:16s} {result['in_process']['reports_per_s']:>12,.0f}/s "
            f"{result['multi_process']['reports_per_s']:>15,.0f}/s "
            f"{result['throughput_ratio']:>6.2f} "
            f"{result['multi_process']['processes']:>6d} "
            f"{result['multi_process']['lost_sightings']:>5d}"
        )
    loss = payload["udp_loss"]
    print(
        f"{'udp_loss':16s} {'-':>13s}  {loss['reports_per_s']:>15,.0f}/s "
        f"{'-':>6s} {loss['processes']:>6d} {loss['lost_sightings']:>5d} "
        f"(driver drops: {loss['driver_messages_dropped']})"
    )
    print(
        f"zero lost (all lanes): {payload['zero_lost_all_lanes']}, "
        f"min throughput ratio: {payload['min_throughput_ratio']}"
    )
    path = write_bench_json(args.out_pr7, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


def run_pr9(args) -> None:
    """The byzantine measurement (corrupt/stale defense + promotion)."""
    from repro.sim.byzantine import byzantine_benchmark_payload

    start = time.perf_counter()
    payload = byzantine_benchmark_payload(seed=args.seed)
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = (
        f"{'lane':8s} {'faults':>7s} {'frames':>7s} {'quar':>5s} {'stale':>6s} "
        f"{'bad acc':>8s} {'lost':>5s} {'dup':>4s}"
    )
    print(header)
    print("-" * len(header))
    for name, lane in payload["lanes"].items():
        print(
            f"{name:8s} {lane['faults_injected']:>7d} "
            f"{lane['frames_corrupted']:>7d} "
            f"{lane['messages_quarantined']:>5d} "
            f"{lane['stale_epoch_rejected']:>6d} "
            f"{lane['corrupted_accepted']:>8d} "
            f"{lane['lost_sightings']:>5d} "
            f"{lane['duplicated_sightings']:>4d}"
        )
    rp = payload["root_partition"]
    print(
        f"root partition: reconvergence {rp['reconvergence_ticks']} ticks, "
        f"cross queries before heal "
        f"{rp['cross_queries_answered_before_heal']}/{rp['cross_queries_before_heal']}, "
        f"lost {rp['lost_sightings']}, dup {rp['duplicated_sightings']}"
    )
    print(
        f"zero corrupted accepted: {payload['zero_corrupted_accepted_all_lanes']}, "
        f"zero lost: {payload['zero_lost_all_lanes']}, "
        f"zero duplicated: {payload['zero_duplicated_all_lanes']}, "
        f"defense exercised: {payload['defense_exercised_all_lanes']}"
    )
    path = write_bench_json(args.out_pr9, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


def run_pr10(args) -> None:
    """The columnar-hot-path measurement (vectorized vs object store)."""
    from repro.sim.columnar import columnar_benchmark_payload

    start = time.perf_counter()
    payload = columnar_benchmark_payload(
        objects=args.pr10_objects, ticks=args.pr10_ticks, seed=args.seed
    )
    payload["bench"] = "columnar hot path: 1M-object tick vs object backend"
    payload["generated_by"] = "scripts/bench_smoke.py"
    elapsed = time.perf_counter() - start

    header = f"{'backend':10s} {'objects':>11s} {'tick wall':>11s} {'updates/s':>14s}"
    print(header)
    print("-" * len(header))
    print(
        f"{'columnar':10s} {payload['objects']:>11,d} "
        f"{payload['columnar']['seconds_per_tick'] * 1e3:>8,.0f} ms "
        f"{payload['columnar']['updates_per_second']:>12,.0f}/s"
    )
    print(
        f"{'objects':10s} {payload['baseline_objects']:>11,d} "
        f"{payload['object_baseline']['seconds_per_tick'] * 1e3:>8,.0f} ms "
        f"{payload['object_baseline']['updates_per_second']:>12,.0f}/s"
    )
    print(
        f"tick speedup: {payload['tick_speedup']:.1f}x, "
        f"answers identical: {payload['answers_identical']}, "
        f"monitor bounded: {payload['load_monitor_bounded']}, "
        f"store memory: {payload['columnar']['store_memory_bytes'] / 1e6:,.1f} MB"
    )
    path = write_bench_json(args.out_pr10, payload)
    print(f"\nwrote {path} ({elapsed:.1f}s)")


#: Per-runner acceptance keys (dotted paths into the written payload).
#: These are the numbers scripts/bench_check.py gates on; a runner that
#: writes an artifact where any of them is missing or NaN/Inf has
#: produced garbage the gate may not catch (e.g. ``NaN >= 2.0`` is just
#: False with no hint why) — so main() fails fast right here instead.
ACCEPTANCE_KEYS: dict[str, tuple[str, ...]] = {
    "out": ("indexes",),
    "out_pr2": ("scenarios.flash_crowd.load_drop_factor",),
    "out_pr3": ("message_reduction_factor", "tick_speedup"),
    "out_pr4": (
        "stall_ticks_overlapped",
        "migration_throughput_ratio",
        "zero_lost_all_lanes",
    ),
    "out_pr5": (
        "round_reduction_ratio",
        "migration_throughput_ratio",
        "zero_lost_all_lanes",
    ),
    "out_pr6": (
        "zero_lost_all_scenarios",
        "zero_duplicated_all_scenarios",
        "max_recovery_ticks",
        "reconvergence_ticks",
    ),
    "out_pr7": ("zero_lost_all_lanes", "min_throughput_ratio"),
    "out_pr9": (
        "zero_corrupted_accepted_all_lanes",
        "zero_lost_all_lanes",
        "zero_duplicated_all_lanes",
        "defense_exercised_all_lanes",
        "root_reconvergence_ticks",
    ),
    "out_pr10": (
        "objects",
        "tick_speedup",
        "answers_identical",
        "load_monitor_bounded",
    ),
}


def validate_artifact(filename: str, keys: tuple[str, ...]) -> list[str]:
    """Problems with the written artifact's acceptance keys, if any.

    Re-loads the JSON from disk (so what is validated is exactly what CI
    uploads) and walks each dotted key path.  A missing path or a
    non-finite float is a problem; ``None`` passes — several acceptance
    numbers are legitimately nullable and bench_check.py handles that.
    """
    import json
    import math

    from benchreport import ROOT as bench_root

    path = bench_root / filename
    if not path.exists():
        return [f"{filename}: artifact missing after its runner completed"]
    payload = json.loads(path.read_text(encoding="utf-8"))
    problems = []
    for dotted in keys:
        value = payload
        for part in dotted.split("."):
            if not isinstance(value, dict) or part not in value:
                problems.append(f"{filename}: acceptance key {dotted!r} missing")
                value = None
                break
            value = value[part]
        else:
            if isinstance(value, float) and not math.isfinite(value):
                problems.append(
                    f"{filename}: acceptance key {dotted!r} is non-finite ({value})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=_positive_int, default=bsi.OBJECTS)
    parser.add_argument("--moves", type=_positive_int, default=bsi.FASTPATH_MOVES)
    parser.add_argument("--rounds", type=_positive_int, default=3)
    parser.add_argument(
        "--ticks", type=_positive_int, default=5, help="sim ticks per index kind"
    )
    parser.add_argument("--seed", type=int, default=0, help="rebalance-bench seed")
    parser.add_argument(
        "--pr10-objects",
        type=_positive_int,
        default=1_000_000,
        help="columnar-bench population (acceptance measures at >= 1M)",
    )
    parser.add_argument(
        "--pr10-ticks", type=_positive_int, default=5, help="columnar-bench sim ticks"
    )
    parser.add_argument("--out", default="BENCH_PR1.json")
    parser.add_argument("--out-pr2", default="BENCH_PR2.json")
    parser.add_argument("--out-pr3", default="BENCH_PR3.json")
    parser.add_argument("--out-pr4", default="BENCH_PR4.json")
    parser.add_argument("--out-pr5", default="BENCH_PR5.json")
    parser.add_argument("--out-pr6", default="BENCH_PR6.json")
    parser.add_argument("--out-pr7", default="BENCH_PR7.json")
    parser.add_argument("--out-pr9", default="BENCH_PR9.json")
    parser.add_argument("--out-pr10", default="BENCH_PR10.json")
    parser.add_argument(
        "--skip-pr1", action="store_true", help="skip the fast-path bench"
    )
    parser.add_argument(
        "--skip-pr2", action="store_true", help="skip the rebalance bench"
    )
    parser.add_argument(
        "--skip-pr3", action="store_true", help="skip the protocol-lane bench"
    )
    parser.add_argument(
        "--skip-pr4", action="store_true", help="skip the zero-stall bench"
    )
    parser.add_argument(
        "--skip-pr5", action="store_true", help="skip the planner-v2 bench"
    )
    parser.add_argument(
        "--skip-pr6", action="store_true", help="skip the chaos bench"
    )
    parser.add_argument(
        "--skip-pr7", action="store_true", help="skip the real-transport bench"
    )
    parser.add_argument(
        "--skip-pr9", action="store_true", help="skip the byzantine bench"
    )
    parser.add_argument(
        "--skip-pr10", action="store_true", help="skip the columnar hot-path bench"
    )
    args = parser.parse_args(argv)

    ran = False
    problems: list[str] = []
    for skip, runner, out_attr in (
        (args.skip_pr1, run_pr1, "out"),
        (args.skip_pr2, run_pr2, "out_pr2"),
        (args.skip_pr3, run_pr3, "out_pr3"),
        (args.skip_pr4, run_pr4, "out_pr4"),
        (args.skip_pr5, run_pr5, "out_pr5"),
        (args.skip_pr6, run_pr6, "out_pr6"),
        (args.skip_pr7, run_pr7, "out_pr7"),
        (args.skip_pr9, run_pr9, "out_pr9"),
        (args.skip_pr10, run_pr10, "out_pr10"),
    ):
        if skip:
            continue
        if ran:
            print()
        runner(args)
        ran = True
        problems.extend(
            validate_artifact(getattr(args, out_attr), ACCEPTANCE_KEYS[out_attr])
        )
    if problems:
        print("\nacceptance-key validation FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
