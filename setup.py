"""Setuptools shim.

The offline evaluation environment has no ``wheel`` package, so PEP 660
editable installs cannot build an editable wheel.  This shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.

Nothing here is *required* at runtime: the package is pure stdlib.  The
extras declare the optional accelerators and dev tooling (CI installs
them explicitly so its pip cache keys on this file):

* ``fast`` — numpy, backing the columnar hot path
  (``repro.spatial.columnar``); without it the same code runs on
  stdlib ``array`` buffers, correct but slower.
* ``test`` / ``bench`` — what the CI tier-1 and bench jobs install.
"""

from setuptools import find_packages, setup

setup(
    name="repro-hls",
    version="0.10.0",
    description="Hierarchical location service reproduction (ICDCS '02)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    extras_require={
        "fast": ["numpy"],
        "test": ["pytest", "hypothesis", "numpy"],
        "bench": ["pytest", "pytest-benchmark", "numpy"],
    },
)
