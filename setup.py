"""Setuptools shim.

The offline evaluation environment has no ``wheel`` package, so PEP 660
editable installs cannot build an editable wheel.  This shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
