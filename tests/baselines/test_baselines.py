"""Tests for the centralized and home-server baselines.

The key property: both baselines return *semantically identical* answers
to the hierarchical LS — they differ only in message economics, which the
ablation benches measure.
"""

import random

from repro.baselines import CentralLocationServer, build_home_service, home_of
from repro.core import LocationClient, LocationService, TrackedObject, build_table2_hierarchy
from repro.geo import Point, Rect
from repro.runtime.simnet import SimNetwork

AREA = Rect(0, 0, 1500, 1500)


def make_central():
    net = SimNetwork()
    server = net.join(CentralLocationServer(AREA))
    return net, server


class TestCentralBaseline:
    def test_register_update_query(self):
        net, server = make_central()
        obj = net.join(TrackedObject("truck", entry_server="central"))

        async def scenario():
            offered = await obj.register(Point(100, 100), 25.0, 100.0)
            assert offered == 25.0
            await obj.report(Point(300, 300))
            client_ld = await obj.pos_query("truck")
            return client_ld

        ld = net.run_coro(scenario())
        assert ld.pos == Point(300, 300)

    def test_no_handover_needed(self):
        net, server = make_central()
        obj = net.join(TrackedObject("truck", entry_server="central"))

        async def scenario():
            await obj.register(Point(100, 100), 25.0, 100.0)
            res = await obj.report(Point(1400, 1400))  # would hand over in the hierarchy
            return res

        res = net.run_coro(scenario())
        assert res.ok and res.agent == "central"

    def test_leaving_area_deregisters(self):
        net, server = make_central()
        obj = net.join(TrackedObject("truck", entry_server="central"))

        async def scenario():
            await obj.register(Point(100, 100), 25.0, 100.0)
            return await obj.report(Point(99999, 0))

        res = net.run_coro(scenario())
        assert res.deregistered

    def test_range_and_nn_queries(self):
        net, server = make_central()
        client = net.join(LocationClient("c", entry_server="central"))
        objs = [net.join(TrackedObject(f"o{i}", entry_server="central")) for i in range(4)]
        positions = [Point(100, 100), Point(200, 200), Point(1000, 1000), Point(1400, 1400)]

        async def scenario():
            for obj, pos in zip(objs, positions):
                await obj.register(pos, 25.0, 100.0)
            answer = await client.range_query(
                Rect(0, 0, 500, 500), req_acc=50.0, req_overlap=0.5
            )
            nn = await client.neighbor_query(Point(150, 150), req_acc=50.0)
            return answer, nn

        answer, nn = net.run_coro(scenario())
        assert {oid for oid, _ in answer.entries} == {"o0", "o1"}
        assert nn.result.nearest[0] in {"o0", "o1"}

    def test_matches_hierarchy_answers(self):
        """Same workload, same answers as the hierarchical service."""
        rng = random.Random(9)
        placements = [
            (f"o{i}", Point(rng.uniform(0, 1500), rng.uniform(0, 1500))) for i in range(60)
        ]
        query_area = Rect(200, 200, 900, 1200)

        # Hierarchical service.
        svc = LocationService(build_table2_hierarchy())
        svc.register_many(placements)
        hier = svc.range_query(query_area, req_acc=50.0, req_overlap=0.4)

        # Central baseline.
        net, server = make_central()
        client = net.join(LocationClient("c", entry_server="central"))

        async def scenario():
            for oid, pos in placements:
                obj = net.join(TrackedObject(oid, entry_server="central"))
                await obj.register(pos, 25.0, 100.0)
            return await client.range_query(query_area, req_acc=50.0, req_overlap=0.4)

        central = net.run_coro(scenario())
        assert list(central.entries) == list(hier.entries)


class TestHomeServerBaseline:
    def test_home_mapping_deterministic(self):
        assert home_of("truck-7", 8) == home_of("truck-7", 8)
        homes = {home_of(f"o{i}", 4) for i in range(100)}
        assert homes == {f"home-{i}" for i in range(4)}  # all servers used

    def test_point_operations_single_hop(self):
        net, client = build_home_service(AREA, n_servers=4)

        async def scenario():
            await client.register("truck", Point(100, 100), 25.0, 100.0)
            net.stats.reset()
            ld = await client.pos_query("truck")
            return ld

        ld = net.run_coro(scenario())
        assert ld.pos == Point(100, 100)
        # One request + one response: the HLR advantage.
        assert net.stats.messages_sent == 2

    def test_update_never_hands_over(self):
        net, client = build_home_service(AREA, n_servers=4)

        async def scenario():
            await client.register("truck", Point(100, 100), 25.0, 100.0)
            res = await client.update("truck", Point(1400, 1400))
            return res, await client.pos_query("truck")

        res, ld = net.run_coro(scenario())
        assert res.ok
        assert ld.pos == Point(1400, 1400)

    def test_range_query_scatters_to_all_servers(self):
        net, client = build_home_service(AREA, n_servers=8)

        async def scenario():
            for i in range(20):
                await client.register(f"o{i}", Point(10 + i * 70.0, 100), 25.0, 100.0)
            net.stats.reset()
            return await client.range_query(
                Rect(0, 0, 400, 200), req_acc=50.0, req_overlap=0.3
            )

        entries = net.run_coro(scenario())
        # Every home server received the query: no spatial locality.
        assert net.stats.by_type.get("RangeQueryFwd") == 8
        ids = {oid for oid, _ in entries}
        assert ids and all(oid.startswith("o") for oid in ids)

    def test_neighbor_query_correct(self):
        net, client = build_home_service(AREA, n_servers=4)

        async def scenario():
            await client.register("near", Point(100, 100), 25.0, 100.0)
            await client.register("far", Point(1200, 1200), 25.0, 100.0)
            return await client.neighbor_query(Point(150, 150), req_acc=50.0)

        result = net.run_coro(scenario())
        assert result.nearest[0] == "near"

    def test_matches_hierarchy_range_semantics(self):
        rng = random.Random(21)
        placements = [
            (f"o{i}", Point(rng.uniform(0, 1500), rng.uniform(0, 1500))) for i in range(40)
        ]
        query_area = Rect(100, 100, 1000, 700)

        svc = LocationService(build_table2_hierarchy())
        svc.register_many(placements)
        hier = svc.range_query(query_area, req_acc=50.0, req_overlap=0.4)

        net, client = build_home_service(AREA, n_servers=4)

        async def scenario():
            for oid, pos in placements:
                await client.register(oid, pos, 25.0, 100.0)
            return await client.range_query(query_area, req_acc=50.0, req_overlap=0.4)

        home_entries = net.run_coro(scenario())
        assert list(home_entries) == list(hier.entries)
