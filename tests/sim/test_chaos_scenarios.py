"""Smoke tests for the chaos scenario family (small, fast parameters).

The full-size runs live in ``benchmarks/bench_chaos.py`` and are gated
by ``scripts/bench_check.py``; these keep the scenario code honest on
every test run — each fault class must recover with zero lost and zero
duplicated sightings, with chaos actually injected.
"""

import pytest

from repro.sim.chaos import (
    chaos_benchmark_payload,
    leaf_crash_scenario,
    migration_crash_scenario,
    partition_scenario,
)

SMALL = dict(objects=120, seed=0)


def assert_exact_recovery(result):
    assert result["lost_sightings"] == 0
    assert result["duplicated_sightings"] == 0
    assert result["epoch_consistent"]
    assert result["invariants"]["consistency_ok"]
    assert result["invariants"]["hierarchy_valid"]
    assert result["faults_injected"] >= 1  # chaos actually ran


class TestLeafCrashScenario:
    def test_merge_recovery_retracks_everything(self):
        result = leaf_crash_scenario(warm_ticks=1, post_ticks=3, **SMALL)
        assert_exact_recovery(result)
        assert result["strategy"] == "merge"
        assert result["new_home"] == "root.0"
        assert result["replayed_records"] > 0
        assert result["detection"]["attempts"] >= 1
        assert result["recovery_ticks"] is not None
        assert result["recovery_ticks"] <= 3

    def test_restart_strategy_recovers_in_place(self):
        result = leaf_crash_scenario(
            warm_ticks=1, post_ticks=3, strategy="restart", **SMALL
        )
        assert_exact_recovery(result)
        assert result["new_home"] == result["victim"]
        assert result["moved"] == 0


class TestPartitionScenario:
    def test_heal_reconverges_with_measured_staleness(self):
        result = partition_scenario(
            warm_ticks=1, partition_ticks=2, heal_ticks=4, **SMALL
        )
        assert_exact_recovery(result)
        assert result["severed_links"] == result["healed_links"] > 0
        assert result["reconvergence_ticks"] is not None
        assert result["reconvergence_ticks"] <= 4
        # The partition really isolated traffic: protocol messages
        # crossing the cut were dropped by the injector — and every
        # sighting still survived to the final count.
        assert result["dropped_deliveries"] > 0


class TestMigrationCrashScenario:
    @pytest.mark.parametrize("phase", ["copy", "dual_write"])
    def test_pre_cutover_crash_discards_and_reruns(self, phase):
        result = migration_crash_scenario(
            phase=phase, warm_ticks=1, post_ticks=3, **SMALL
        )
        assert_exact_recovery(result)
        assert result["epoch_unchanged_by_discard"]
        assert not result["rolled_forward"]
        assert result["rerun_moved"] > 0
        assert result["recovery_ticks"] is not None

    def test_cutover_crash_rolls_forward(self):
        result = migration_crash_scenario(
            phase="cutover", warm_ticks=1, post_ticks=3, **SMALL
        )
        assert_exact_recovery(result)
        assert result["rolled_forward"]
        assert result["replayed_records"] > 0
        assert result["epoch_after_recovery"] > result["epoch_before"]

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            migration_crash_scenario(phase="warp")


class TestBenchmarkPayload:
    def test_payload_aggregates_all_scenarios(self):
        payload = chaos_benchmark_payload(objects=120, seed=0)
        assert set(payload["scenarios"]) == {
            "leaf_crash_midtick",
            "partition_heal",
            "migration_crash_copy",
            "migration_crash_dual_write",
            "migration_crash_cutover",
        }
        assert payload["zero_lost_all_scenarios"]
        assert payload["zero_duplicated_all_scenarios"]
        assert payload["epoch_consistent_all_scenarios"]
        assert payload["max_recovery_ticks"] is not None
        assert payload["reconvergence_ticks"] is not None
        assert payload["faults_injected_total"] >= 5
