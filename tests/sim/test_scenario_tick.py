"""Tests for the batched simulation tick and workload coalescing (PR 1)."""

import pytest

from repro.geo import Rect
from repro.model import RangeQuery
from repro.protocols.update_policies import DistancePolicy
from repro.sim import MobilitySimulation, WorkloadGenerator, WorkloadSpec, coalesce_updates
from repro.sim.scenario import DistributedHarness, table2_service


class TestMobilitySimulation:
    def test_tick_moves_every_walker(self):
        sim = MobilitySimulation.table1(object_count=50, index_kind="grid", seed=1)
        stats = sim.tick(2.0)
        assert stats.moved == 50
        assert stats.reported == 50
        assert stats.suppressed == 0
        assert stats.time == 2.0
        for oid, walker in sim.walkers.items():
            assert sim.store.sightings.get(oid).pos == walker.position

    def test_store_queries_follow_the_batch(self):
        sim = MobilitySimulation.table1(
            object_count=80, index_kind="rtree", area_side=500.0, seed=2
        )
        sim.run(5, dt=2.0)
        entries = sim.store.range_query(
            RangeQuery(Rect(0, 0, 500, 500), req_acc=100.0, req_overlap=0.1)
        )
        assert {oid for oid, _ in entries} == set(sim.walkers)

    @pytest.mark.parametrize("kind", ["quadtree", "rtree", "grid", "linear"])
    def test_all_index_kinds_stay_consistent(self, kind):
        sim = MobilitySimulation.table1(
            object_count=40, index_kind=kind, area_side=800.0, seed=3
        )
        sim.run(8, dt=3.0)
        index_items = dict(sim.store.sightings.positions_in_rect(Rect(0, 0, 800, 800)))
        assert index_items == {
            oid: walker.position for oid, walker in sim.walkers.items()
        }

    def test_policies_suppress_reports(self):
        sim = MobilitySimulation.table1(
            object_count=30,
            index_kind="grid",
            seed=4,
            policy_factory=lambda: DistancePolicy(threshold=1e6),
        )
        first = sim.tick(1.0)  # first tick: everyone reports once
        later = sim.tick(1.0)
        assert first.reported == 30
        assert later.reported == 0
        assert later.suppressed == 30

    def test_tick_time_accumulates(self):
        sim = MobilitySimulation.table1(object_count=5, seed=5)
        stats = sim.run(4, dt=0.5)
        assert [s.time for s in stats] == [0.5, 1.0, 1.5, 2.0]
        assert sim.ticks == stats


class TestCoalesceUpdates:
    def test_groups_updates_by_leaf_and_keeps_queries(self):
        svc, homes = table2_service(object_count=60)
        gen = WorkloadGenerator(
            svc.hierarchy, list(homes), homes, WorkloadSpec(), seed=7
        )
        ops = list(gen.operations(200))
        updates_by_leaf, others = coalesce_updates(ops)
        n_updates = sum(len(v) for v in updates_by_leaf.values())
        assert n_updates + len(others) == 200
        assert all(op.kind != "update" for op in others)
        for leaf, moves in updates_by_leaf.items():
            for oid, pos in moves:
                assert homes[oid] == leaf
                assert svc.hierarchy.config(leaf).area.contains_point(pos)

    def test_operation_batches_match_stream(self):
        svc, homes = table2_service(object_count=30)
        spec = WorkloadSpec()
        a = WorkloadGenerator(svc.hierarchy, list(homes), homes, spec, seed=9)
        b = WorkloadGenerator(svc.hierarchy, list(homes), homes, spec, seed=9)
        stream = list(a.operations(100))
        batches = list(b.operation_batches(100, batch_size=17))
        assert [op for batch in batches for op in batch] == stream
        assert [len(batch) for batch in batches] == [17, 17, 17, 17, 17, 15]

    def test_batch_size_must_be_positive(self):
        svc, homes = table2_service(object_count=5)
        gen = WorkloadGenerator(svc.hierarchy, list(homes), homes, WorkloadSpec(), seed=1)
        with pytest.raises(ValueError):
            list(gen.operation_batches(10, batch_size=0))


class TestBatchedWorkloadRunner:
    def test_counters_and_store_state(self):
        svc, homes = table2_service(object_count=120)
        harness = DistributedHarness(svc, homes)
        gen = WorkloadGenerator(
            svc.hierarchy, list(homes), homes, WorkloadSpec(), seed=11
        )
        counters = harness.run_workload_batched(gen, operations=250, batch_size=40)
        assert counters["updates"] + counters["queries"] == 250
        assert counters["updates"] > 0
        assert counters["update_batches"] <= 7 * len(svc.hierarchy.leaf_ids())
        svc.check_consistency()
        # Every tracked object still has exactly one sighting somewhere.
        assert svc.total_tracked() == 120
