"""Tests for the mobility models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LocationServiceError
from repro.geo import Point, Rect
from repro.sim.mobility import (
    ManhattanWalker,
    RandomWalkWalker,
    RandomWaypointWalker,
    make_walkers,
)

AREA = Rect(0, 0, 1000, 1000)


class TestRandomWaypoint:
    def test_stays_in_area(self):
        walker = RandomWaypointWalker(AREA, seed=1, min_speed=1.0, max_speed=5.0)
        for _ in range(500):
            pos = walker.step(10.0)
            assert AREA.contains_point(pos)

    def test_speed_bound_respected(self):
        walker = RandomWaypointWalker(AREA, seed=2, min_speed=1.0, max_speed=3.0)
        prev = walker.position
        for _ in range(200):
            pos = walker.step(1.0)
            assert pos.distance_to(prev) <= 3.0 + 1e-9
            prev = pos

    def test_deterministic_given_seed(self):
        w1 = RandomWaypointWalker(AREA, seed=7)
        w2 = RandomWaypointWalker(AREA, seed=7)
        for _ in range(50):
            assert w1.step(5.0) == w2.step(5.0)

    def test_pause_halts_movement(self):
        walker = RandomWaypointWalker(
            AREA, seed=3, min_speed=100.0, max_speed=100.0, pause=1e9
        )
        # Reach the first waypoint, then pause forever.
        for _ in range(100):
            walker.step(10.0)
        frozen = walker.position
        assert walker.step(10.0) == frozen

    def test_invalid_speeds(self):
        with pytest.raises(LocationServiceError):
            RandomWaypointWalker(AREA, min_speed=0.0, max_speed=1.0)
        with pytest.raises(LocationServiceError):
            RandomWaypointWalker(AREA, min_speed=5.0, max_speed=1.0)

    def test_explicit_start(self):
        walker = RandomWaypointWalker(AREA, seed=1, start=Point(500, 500))
        assert walker.position == Point(500, 500)

    def test_start_outside_area_rejected(self):
        with pytest.raises(LocationServiceError):
            RandomWaypointWalker(AREA, start=Point(-5, 0))

    def test_trajectory_sampling(self):
        walker = RandomWaypointWalker(AREA, seed=4)
        trajectory = walker.trajectory(duration=60.0, dt=2.0)
        assert len(trajectory) == 31
        assert trajectory[0][0] == 0.0
        assert trajectory[-1][0] == pytest.approx(60.0)


class TestRandomWalk:
    def test_stays_in_area(self):
        walker = RandomWalkWalker(AREA, seed=1, speed=50.0)
        for _ in range(1000):
            assert AREA.contains_point(walker.step(5.0))

    def test_deterministic(self):
        w1 = RandomWalkWalker(AREA, seed=9)
        w2 = RandomWalkWalker(AREA, seed=9)
        for _ in range(100):
            assert w1.step(1.0) == w2.step(1.0)

    def test_moves(self):
        walker = RandomWalkWalker(AREA, seed=2, speed=2.0, speed_sigma=0.0)
        start = walker.position
        walker.step(10.0)
        assert walker.position != start


class TestManhattan:
    def test_stays_in_area(self):
        walker = ManhattanWalker(AREA, seed=1, block=100.0, speed=10.0)
        for _ in range(500):
            assert AREA.contains_point(walker.step(3.0))

    def test_positions_on_street_grid(self):
        walker = ManhattanWalker(AREA, seed=2, block=100.0, speed=7.0)
        for _ in range(300):
            pos = walker.step(1.0)
            on_vertical = abs(pos.x % 100.0) < 1e-6 or abs(pos.x % 100.0 - 100.0) < 1e-6
            on_horizontal = abs(pos.y % 100.0) < 1e-6 or abs(pos.y % 100.0 - 100.0) < 1e-6
            assert on_vertical or on_horizontal

    def test_invalid_block(self):
        with pytest.raises(LocationServiceError):
            ManhattanWalker(AREA, block=0.0)


class TestMakeWalkers:
    def test_population(self):
        walkers = make_walkers("waypoint", 10, AREA, seed=1)
        assert len(walkers) == 10
        positions = {(w.position.x, w.position.y) for w in walkers}
        assert len(positions) > 1  # independently seeded

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_walkers("teleport", 1, AREA)

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["waypoint", "walk", "manhattan"]), st.integers(0, 1000))
    def test_all_models_stay_in_area(self, kind, seed):
        (walker,) = make_walkers(kind, 1, AREA, seed=seed)
        for _ in range(50):
            assert AREA.contains_point(walker.step(4.0))


class TestTrajectoryTimestamps:
    def test_no_float_accumulation_drift(self):
        """Timestamps are exact multiples of dt, even for long durations.

        The accumulating ``t += dt`` the seed used drifts by one rounding
        error per sample; over tens of thousands of samples that skews
        timestamps (and can add or drop a final sample).
        """
        walker = RandomWaypointWalker(AREA, seed=9)
        dt = 0.1  # not representable exactly in binary
        trajectory = walker.trajectory(duration=3600.0, dt=dt)
        for i, (t, _) in enumerate(trajectory):
            assert t == i * dt  # exact: one multiplication, one rounding

    def test_sample_count_long_duration(self):
        walker = RandomWaypointWalker(AREA, seed=10)
        trajectory = walker.trajectory(duration=10_000.0, dt=0.1)
        # 0.0 plus one sample per dt interval: drift-free computation
        # yields exactly duration/dt + 1 samples.
        assert len(trajectory) == 100_001
        assert trajectory[-1][0] == pytest.approx(10_000.0, abs=1e-6)

    def test_short_trajectory_unchanged(self):
        walker = RandomWaypointWalker(AREA, seed=11)
        trajectory = walker.trajectory(duration=60.0, dt=2.0)
        assert len(trajectory) == 31
        assert [t for t, _ in trajectory] == [2.0 * i for i in range(31)]
