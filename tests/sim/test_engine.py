"""Tests for the deterministic discrete-event engine."""

import pytest

from repro.sim.engine import SimLoop, SimulationError, TimeoutExpired


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert SimLoop().now == 0.0

    def test_events_run_in_time_order(self):
        loop = SimLoop()
        order = []
        loop.call_at(3.0, lambda: order.append("c"))
        loop.call_at(1.0, lambda: order.append("a"))
        loop.call_at(2.0, lambda: order.append("b"))
        loop.run_until_idle()
        assert order == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_equal_time_fifo(self):
        loop = SimLoop()
        order = []
        for i in range(5):
            loop.call_at(1.0, lambda i=i: order.append(i))
        loop.run_until_idle()
        assert order == [0, 1, 2, 3, 4]

    def test_call_later_relative(self):
        loop = SimLoop()
        seen = []
        loop.call_at(5.0, lambda: loop.call_later(2.0, lambda: seen.append(loop.now)))
        loop.run_until_idle()
        assert seen == [7.0]

    def test_scheduling_in_past_rejected(self):
        loop = SimLoop()
        loop.call_at(10.0, lambda: None)
        loop.run_until_idle()
        with pytest.raises(SimulationError):
            loop.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimLoop().call_later(-1.0, lambda: None)

    def test_cancel(self):
        loop = SimLoop()
        fired = []
        handle = loop.call_at(1.0, lambda: fired.append(1))
        handle.cancel()
        loop.run_until_idle()
        assert fired == []

    def test_max_time_pauses(self):
        loop = SimLoop()
        fired = []
        loop.call_at(1.0, lambda: fired.append(1))
        loop.call_at(10.0, lambda: fired.append(2))
        loop.run_until_idle(max_time=5.0)
        assert fired == [1]
        assert loop.now == 5.0
        loop.run_until_idle()
        assert fired == [1, 2]

    def test_livelock_guard(self):
        loop = SimLoop()

        def respawn():
            loop.call_soon(respawn)

        loop.call_soon(respawn)
        with pytest.raises(SimulationError):
            loop.run_until_idle(max_events=1000)


class TestFutures:
    def test_set_and_get(self):
        loop = SimLoop()
        future = loop.create_future()
        future.set_result(42)
        assert future.done()
        assert future.result() == 42

    def test_double_resolve_rejected(self):
        loop = SimLoop()
        future = loop.create_future()
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_result_before_done_rejected(self):
        with pytest.raises(SimulationError):
            SimLoop().create_future().result()

    def test_exception_propagates(self):
        loop = SimLoop()
        future = loop.create_future()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            future.result()

    def test_callback_after_done_still_fires(self):
        loop = SimLoop()
        future = loop.create_future()
        future.set_result("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        loop.run_until_idle()
        assert seen == ["x"]


class TestTasks:
    def test_run_until_complete(self):
        loop = SimLoop()

        async def main():
            return 7

        assert loop.run_until_complete(main()) == 7

    def test_sleep_advances_virtual_time(self):
        loop = SimLoop()

        async def main():
            await loop.sleep(5.0)
            return loop.now

        assert loop.run_until_complete(main()) == 5.0

    def test_sequential_awaits(self):
        loop = SimLoop()
        timeline = []

        async def main():
            await loop.sleep(1.0)
            timeline.append(loop.now)
            await loop.sleep(2.0)
            timeline.append(loop.now)

        loop.run_until_complete(main())
        assert timeline == [1.0, 3.0]

    def test_concurrent_tasks_interleave(self):
        loop = SimLoop()
        timeline = []

        async def worker(name, delay):
            await loop.sleep(delay)
            timeline.append((loop.now, name))

        loop.create_task(worker("slow", 3.0))
        loop.create_task(worker("fast", 1.0))
        loop.run_until_idle()
        assert timeline == [(1.0, "fast"), (3.0, "slow")]

    def test_task_awaits_task(self):
        loop = SimLoop()

        async def producer():
            await loop.sleep(2.0)
            return "data"

        async def consumer():
            task = loop.create_task(producer())
            value = await task
            return value, loop.now

        assert loop.run_until_complete(consumer()) == ("data", 2.0)

    def test_exception_propagates_to_awaiter(self):
        loop = SimLoop()

        async def failing():
            raise RuntimeError("inner")

        async def outer():
            try:
                await loop.create_task(failing())
            except RuntimeError as exc:
                return str(exc)

        assert loop.run_until_complete(outer()) == "inner"

    def test_unawaited_failure_is_recorded(self):
        loop = SimLoop()

        async def failing():
            raise RuntimeError("lost")

        loop.create_task(failing())
        loop.run_until_idle()
        assert len(loop.task_errors) == 1
        assert "lost" in str(loop.task_errors[0][1])

    def test_incomplete_main_task_detected(self):
        loop = SimLoop()

        async def stuck():
            await loop.create_future()  # never resolved

        with pytest.raises(SimulationError):
            loop.run_until_complete(stuck())

    def test_awaiting_foreign_object_fails_cleanly(self):
        loop = SimLoop()

        async def bad():
            await object()  # type: ignore[misc]

        loop.create_task(bad())
        loop.run_until_idle()
        assert loop.task_errors


class TestTimeouts:
    def test_timeout_fires(self):
        loop = SimLoop()
        inner = loop.create_future()
        wrapped = loop.timeout_future(inner, 5.0, "no reply")

        async def main():
            with pytest.raises(TimeoutExpired):
                await wrapped
            return loop.now

        assert loop.run_until_complete(main()) == 5.0

    def test_result_beats_timeout(self):
        loop = SimLoop()
        inner = loop.create_future()
        wrapped = loop.timeout_future(inner, 5.0, "no reply")
        loop.call_at(2.0, lambda: inner.set_result("ok"))

        async def main():
            return await wrapped, loop.now

        assert loop.run_until_complete(main()) == ("ok", 2.0)

    def test_late_result_ignored_after_timeout(self):
        loop = SimLoop()
        inner = loop.create_future()
        wrapped = loop.timeout_future(inner, 1.0, "late")
        loop.call_at(5.0, lambda: inner.set_result("too late"))

        async def main():
            with pytest.raises(TimeoutExpired):
                await wrapped

        loop.run_until_complete(main())


class TestCallbackBatching:
    """SimFuture drains multi-callback lists in one queue event."""

    def test_many_callbacks_fire_in_registration_order(self):
        loop = SimLoop()
        future = loop.create_future()
        order = []
        for i in range(6):
            future.add_done_callback(lambda fut, i=i: order.append(i))
        future.set_result("x")
        loop.run_until_idle()
        assert order == list(range(6))

    def test_single_queue_event_for_all_callbacks(self):
        loop = SimLoop()
        future = loop.create_future()
        for _ in range(5):
            future.add_done_callback(lambda fut: None)
        future.set_result(None)
        # All five callbacks ride one scheduled event.
        assert loop.pending_events() == 1

    def test_no_event_scheduled_without_callbacks(self):
        loop = SimLoop()
        future = loop.create_future()
        future.set_result(None)
        assert loop.pending_events() == 0

    def test_callback_added_after_resolution_runs_separately(self):
        loop = SimLoop()
        future = loop.create_future()
        future.set_result(1)
        seen = []
        future.add_done_callback(lambda fut: seen.append(fut.result()))
        loop.run_until_idle()
        assert seen == [1]

    def test_callbacks_see_result_and_interleave_consistently(self):
        loop = SimLoop()
        future = loop.create_future()
        order = []
        future.add_done_callback(lambda fut: order.append(("cb1", fut.result())))
        future.add_done_callback(
            lambda fut: loop.call_soon(lambda: order.append(("spawned", loop.now)))
        )
        future.add_done_callback(lambda fut: order.append(("cb3", fut.result())))
        loop.call_at(2.0, lambda: future.set_result("done"))
        loop.run_until_idle()
        # Work scheduled by a callback runs after the whole drain.
        assert order == [("cb1", "done"), ("cb3", "done"), ("spawned", 2.0)]

    def test_raising_callback_does_not_eat_successors(self):
        """A raising callback must not swallow the rest of the drain —
        each had its own queue event in the unbatched scheme."""
        loop = SimLoop()
        future = loop.create_future()
        seen = []

        def boom(fut):
            raise RuntimeError("boom")

        future.add_done_callback(lambda fut: seen.append("first"))
        future.add_done_callback(boom)
        future.add_done_callback(lambda fut: seen.append("after-boom"))
        future.set_result(None)
        with pytest.raises(RuntimeError):
            loop.run_until_idle()
        # The survivor was re-queued; resuming the loop runs it.
        loop.run_until_idle()
        assert seen == ["first", "after-boom"]
