"""Tests for the elastic harness, hotspot workloads and scenarios."""

import random

import pytest

from repro.geo import Point, Rect
from repro.sim.elastic import (
    ElasticHarness,
    _populate,
    _fresh_service,
    festival_surge_scenario,
    flash_crowd_scenario,
)
from repro.sim.workload import HotspotSpec, hotspot_positions, wavefront_area

ROOT = Rect(0, 0, 1500, 1500)


class TestHotspotWorkload:
    def test_fraction_lands_in_hotspot(self):
        spec = HotspotSpec(area=Rect(100, 100, 300, 300), fraction=0.75)
        placements = hotspot_positions(ROOT, spec, 200, seed=1)
        inside = sum(1 for _, p in placements if spec.area.contains_point(p))
        assert inside >= 150  # the 150 hot ones, plus strays
        assert len(placements) == 200
        assert len({oid for oid, _ in placements}) == 200

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            HotspotSpec(area=ROOT, fraction=1.5)

    def test_wavefront_slides_and_clamps(self):
        west = wavefront_area(ROOT, 0.0, 300.0)
        mid = wavefront_area(ROOT, 0.5, 300.0)
        east = wavefront_area(ROOT, 1.0, 300.0)
        assert west.min_x == ROOT.min_x
        assert east.max_x == ROOT.max_x
        assert west.max_x - west.min_x == pytest.approx(300.0)
        assert west.min_x < mid.min_x < east.min_x
        for band in (west, mid, east):
            assert ROOT.contains_rect(band)
        with pytest.raises(ValueError):
            wavefront_area(ROOT, 1.2, 300.0)


class TestElasticHarness:
    def _harness(self, placements):
        svc = _fresh_service()
        homes = _populate(svc, placements)
        return svc, ElasticHarness(svc, homes)

    def test_fast_and_protocol_paths(self):
        rng = random.Random(0)
        placements = [(f"o{i}", Point(100.0 + i, 100.0)) for i in range(20)]
        svc, harness = self._harness(placements)
        # In-leaf jitter: all fast.
        counts = harness.apply_reports([(f"o{i}", Point(110.0 + i, 105.0)) for i in range(20)])
        assert counts == {"fast": 20, "protocol": 0}
        # One object crosses into another quadrant: protocol + handover.
        counts = harness.apply_reports([("o0", Point(1200.0, 1200.0))])
        assert counts == {"fast": 0, "protocol": 1}
        assert harness.homes["o0"] == "root.3"
        svc.check_consistency()
        assert svc.total_tracked() == 20

    def test_verify_reports_zero_loss(self):
        placements = [(f"o{i}", Point(50.0 + i, 60.0)) for i in range(10)]
        svc, harness = self._harness(placements)
        result = harness.verify(expected_tracked=10)
        assert result["lost_sightings"] == 0
        assert result["consistency_ok"] and result["hierarchy_valid"]


class TestFlashCrowdScenario:
    def test_small_elastic_run_rebalances_and_loses_nothing(self):
        result = flash_crowd_scenario(
            objects=300, ticks=10, elastic=True, rebalance_every=2, measure_ticks=4,
            seed=2,
        )
        assert result["invariants"]["lost_sightings"] == 0
        assert result["splits"] >= 1
        assert result["leaf_count_final"] > 4
        assert result["migrated_objects"] > 0

    def test_static_run_keeps_topology(self):
        result = flash_crowd_scenario(
            objects=200, ticks=6, elastic=False, measure_ticks=3, seed=3
        )
        assert result["splits"] == 0
        assert result["leaf_count_final"] == 4
        assert result["invariants"]["lost_sightings"] == 0


class TestFestivalSurgeScenario:
    def test_overlapped_run_never_stalls_and_loses_nothing(self):
        result = festival_surge_scenario(
            objects=700,
            ticks=16,
            elastic=True,
            migration_mode="overlapped",
            rebalance_every=2,
            measure_ticks=6,
            seed=4,
        )
        assert result["migration_mode"] == "overlapped"
        assert result["stall_ticks"] == 0
        assert result["splits"] >= 1
        assert result["topology_epoch"] >= 1
        assert result["invalidations_sent"] >= 1  # §6.5 broadcast at cutover
        assert result["dual_writes"] > 0  # traffic flowed mid-window
        assert result["invariants"]["lost_sightings"] == 0
        assert result["invariants"]["consistency_ok"]

    def test_quiesced_mode_counts_stalls(self):
        result = festival_surge_scenario(
            objects=700,
            ticks=16,
            elastic=True,
            migration_mode="quiesced",
            rebalance_every=2,
            measure_ticks=6,
            seed=4,
        )
        assert result["stall_ticks"] >= 1
        assert result["dual_writes"] == 0  # one-shot copy, no window
        assert result["invariants"]["lost_sightings"] == 0
