"""Tests for workload generation, metrics and calibration."""

import pytest

from repro.core import build_table2_hierarchy
from repro.geo import Point
from repro.sim.calibration import calibrate, default_cost_model
from repro.sim.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    format_table,
    percentile,
)
from repro.sim.workload import WorkloadGenerator, WorkloadSpec, scatter_objects


class TestWorkloadSpec:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec(update_fraction=0.9, pos_query_fraction=0.9,
                         range_query_fraction=0.0, nn_query_fraction=0.0)

    def test_locality_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(locality=1.5)


class TestWorkloadGenerator:
    def make_generator(self, spec=None, seed=0):
        hierarchy = build_table2_hierarchy()
        placements = scatter_objects(hierarchy, 200, seed=1)
        homes = {oid: hierarchy.leaf_for_point(pos) for oid, pos in placements}
        return hierarchy, WorkloadGenerator(
            hierarchy, [oid for oid, _ in placements], homes,
            spec or WorkloadSpec(), seed=seed,
        )

    def test_empty_objects_rejected(self):
        hierarchy = build_table2_hierarchy()
        with pytest.raises(ValueError):
            WorkloadGenerator(hierarchy, [], {}, WorkloadSpec())

    def test_mix_fractions_respected(self):
        _, gen = self.make_generator(seed=5)
        counts = {}
        n = 4000
        for op in gen.operations(n):
            counts[op.kind] = counts.get(op.kind, 0) + 1
        assert counts["update"] / n == pytest.approx(0.6, abs=0.05)
        assert counts["pos_query"] / n == pytest.approx(0.25, abs=0.05)
        assert counts["range_query"] / n == pytest.approx(0.1, abs=0.03)
        assert counts["nn_query"] / n == pytest.approx(0.05, abs=0.03)

    def test_updates_stay_local_to_home_leaf(self):
        hierarchy, gen = self.make_generator()
        for op in gen.operations(500):
            if op.kind == "update":
                area = hierarchy.config(op.entry_leaf).area
                assert area.contains_point(op.pos)
                assert gen.object_home_leaf[op.object_id] == op.entry_leaf

    def test_high_locality_prefers_local_objects(self):
        hierarchy, gen_local = self.make_generator(
            spec=WorkloadSpec(locality=1.0), seed=2
        )
        local_hits = 0
        total = 0
        for op in gen_local.operations(2000):
            if op.kind == "pos_query":
                total += 1
                if gen_local.object_home_leaf[op.object_id] == op.entry_leaf:
                    local_hits += 1
        assert total > 0
        assert local_hits / total > 0.95

    def test_zero_locality_spreads_targets(self):
        hierarchy, gen = self.make_generator(spec=WorkloadSpec(locality=0.0), seed=3)
        remote = 0
        total = 0
        for op in gen.operations(2000):
            if op.kind == "pos_query":
                total += 1
                if gen.object_home_leaf[op.object_id] != op.entry_leaf:
                    remote += 1
        # With 4 leaves and uniform targets, ~75% should be remote.
        assert remote / total == pytest.approx(0.75, abs=0.08)

    def test_range_areas_inside_root(self):
        hierarchy, gen = self.make_generator()
        root = hierarchy.root_area()
        for op in gen.operations(500):
            if op.kind == "range_query":
                assert root.contains_rect(op.area)

    def test_deterministic(self):
        _, gen1 = self.make_generator(seed=11)
        _, gen2 = self.make_generator(seed=11)
        ops1 = [op for op in gen1.operations(100)]
        ops2 = [op for op in gen2.operations(100)]
        assert ops1 == ops2


class TestScatterObjects:
    def test_count_and_bounds(self):
        hierarchy = build_table2_hierarchy()
        placements = scatter_objects(hierarchy, 100, seed=0)
        assert len(placements) == 100
        root = hierarchy.root_area()
        assert all(root.contains_point(pos) for _, pos in placements)

    def test_deterministic(self):
        hierarchy = build_table2_hierarchy()
        assert scatter_objects(hierarchy, 10, seed=5) == scatter_objects(
            hierarchy, 10, seed=5
        )


class TestMetrics:
    def test_percentile_edge_cases(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert percentile([1.0, 3.0], 0.5) == 2.0  # interpolation

    def test_latency_recorder_summary(self):
        recorder = LatencyRecorder()
        for v in [0.001, 0.002, 0.003, 0.004, 0.010]:
            recorder.record("op", v)
        summary = recorder.summary("op")
        assert summary.count == 5
        assert summary.mean == pytest.approx(0.004)
        assert summary.p50 == pytest.approx(0.003)
        assert summary.maximum == 0.010
        assert "mean=4.000ms" in summary.format_ms()

    def test_empty_summary(self):
        assert LatencyRecorder().summary("never").count == 0

    def test_throughput_meter(self):
        meter = ThroughputMeter()
        meter.begin(10.0)
        for t in range(1, 11):
            meter.note(10.0 + t)
        assert meter.per_second() == pytest.approx(1.0)

    def test_throughput_empty(self):
        assert ThroughputMeter().per_second() == 0.0

    def test_format_table(self):
        text = format_table(
            "Demo", ("op", "value"), [("updates", "41494/s"), ("queries", "384615/s")]
        )
        assert "Demo" in text
        assert "41494/s" in text
        lines = text.splitlines()
        assert len(lines) == 5


class TestCalibration:
    def test_calibrate_produces_positive_costs(self):
        result = calibrate(object_count=300, operations=300)
        assert result.insert_cost > 0
        assert result.update_cost > 0
        assert result.pos_query_cost > 0
        assert result.range_query_cost > 0
        # Hash lookups must be cheaper than spatial-index searches.
        assert result.pos_query_cost < result.range_query_cost

    def test_cost_model_mapping(self):
        model = default_cost_model()
        from repro.core import messages as m
        from repro.model import SightingRecord

        update = m.UpdateReq(
            request_id="r", reply_to="c",
            sighting=SightingRecord("o", 0.0, Point(0, 0), 10.0),
        )
        pos = m.PosQueryReq(request_id="r", reply_to="c", object_id="o")
        assert model.service_time(update) > model.service_time(pos)
