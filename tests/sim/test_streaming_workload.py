"""StreamingWalkers + StreamingMobilitySimulation at test scale.

The streaming lane exists so a million walkers can tick without a
million Python objects; at test scale these pin what the benchmark
relies on: deterministic trajectories per seed, reflection keeping
every walker inside the area, and the columnar/object twin simulations
staying bit-identical through the full store stack.
"""

import pytest

from repro.geo import Rect
from repro.sim import StreamingWalkers
from repro.sim.columnar import StreamingMobilitySimulation, columnar_benchmark_payload

AREA = Rect(0.0, 0.0, 500.0, 500.0)

ENGINES = [
    pytest.param(None, id="numpy"),
    pytest.param(False, id="stdlib"),
]


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


class TestStreamingWalkers:
    def test_same_seed_same_trajectories(self, engine):
        a = StreamingWalkers(40, AREA, seed=3, use_numpy=engine)
        b = StreamingWalkers(40, AREA, seed=3, use_numpy=engine)
        for _ in range(20):
            xs_a, ys_a = a.step(30.0)
            xs_b, ys_b = b.step(30.0)
            assert list(xs_a) == list(xs_b)
            assert list(ys_a) == list(ys_b)

    def test_different_seeds_diverge(self, engine):
        a = StreamingWalkers(40, AREA, seed=3, use_numpy=engine)
        b = StreamingWalkers(40, AREA, seed=4, use_numpy=engine)
        a.step(30.0)
        b.step(30.0)
        assert list(a.xs) != list(b.xs)

    def test_reflection_keeps_walkers_inside(self, engine):
        walkers = StreamingWalkers(60, AREA, speed=25.0, seed=0, use_numpy=engine)
        for _ in range(200):
            xs, ys = walkers.step(30.0)
            assert all(AREA.min_x <= x <= AREA.max_x for x in xs)
            assert all(AREA.min_y <= y <= AREA.max_y for y in ys)

    def test_position_of_matches_arrays(self, engine):
        walkers = StreamingWalkers(10, AREA, seed=1, use_numpy=engine)
        walkers.step(30.0)
        p = walkers.position_of(7)
        assert p.x == float(walkers.xs[7])
        assert p.y == float(walkers.ys[7])

    def test_ticks_generator_advances_clock(self, engine):
        walkers = StreamingWalkers(5, AREA, seed=0, use_numpy=engine)
        times = [now for now, _xs, _ys in walkers.ticks(4, dt=30.0)]
        assert times == [30.0, 60.0, 90.0, 120.0]

    def test_object_ids_are_stable_and_prefixed(self, engine):
        walkers = StreamingWalkers(3, AREA, seed=0, prefix="w", use_numpy=engine)
        assert list(walkers.object_ids) == ["w-0", "w-1", "w-2"]


class TestStreamingSimulationTwins:
    def test_backends_hold_identical_state_through_ticks(self):
        columnar = StreamingMobilitySimulation(
            150, area_side=500.0, backend="columnar", seed=7
        )
        objects = StreamingMobilitySimulation(
            150, area_side=500.0, backend="objects", seed=7
        )
        for _ in range(5):
            columnar.tick(30.0)
            objects.tick(30.0)
            recs_c = {
                r.object_id: (r.pos, r.timestamp)
                for r in columnar.store.sightings.records()
            }
            recs_o = {
                r.object_id: (r.pos, r.timestamp)
                for r in objects.store.sightings.records()
            }
            assert recs_c == recs_o

    def test_columnar_tick_keeps_visitor_registrations(self):
        sim = StreamingMobilitySimulation(50, area_side=500.0, backend="columnar")
        sim.tick(30.0)
        assert sim.store.visitor_count == 50
        assert sim.store.sighting_count == 50
        descriptor = sim.store.position_query("sw-10")
        assert descriptor.pos == sim.walkers.position_of(10)


class TestBenchmarkPayloadSmoke:
    def test_small_payload_has_the_acceptance_shape(self):
        payload = columnar_benchmark_payload(
            objects=400, ticks=2, baseline_objects=400, area_side=500.0
        )
        assert payload["objects"] == 400
        assert payload["answers_identical"], payload["equivalence"]["mismatches"]
        assert payload["load_monitor_bounded"]
        assert payload["tick_speedup"] > 0.0
        assert payload["columnar"]["updates_per_second"] > 0.0

    def test_scaled_baseline_still_cross_checks(self):
        payload = columnar_benchmark_payload(
            objects=600, ticks=2, baseline_objects=200, area_side=500.0
        )
        assert payload["baseline_objects"] == 200
        assert payload["answers_identical"], payload["equivalence"]["mismatches"]
