"""The BENCH_PR9 byzantine lanes, at test scale.

The bench artifact runs three runtimes under the 2% corrupt + 2% stale
adversary; these smokes run the sim and asyncio lanes small enough for
tier-1 and assert the *gates*, not the magnitudes: nothing corrupted is
ever accepted, nothing is lost or duplicated, and the adversary was
demonstrably real (faults fired, defenses caught).  The UDP lane opens
real sockets and lives with the transport tests in
``tests/net/test_socket_scenario.py``'s environment instead.
"""

import pytest

from repro.sim.byzantine import (
    AGED_EPOCH,
    run_asyncio_byzantine_lane,
    run_sim_byzantine_lane,
)

pytestmark = pytest.mark.slow


def _assert_defended(lane: dict) -> None:
    assert lane["corrupted_accepted"] == 0
    assert lane["lost_sightings"] == 0
    assert lane["duplicated_sightings"] == 0
    assert lane["faults_injected"] > 0
    caught = (
        lane["frames_corrupted"]
        + lane["messages_quarantined"]
        + lane["stale_epoch_rejected"]
    )
    assert caught > 0


class TestSimLane:
    def test_defends_and_loses_nothing(self):
        lane = run_sim_byzantine_lane(objects=120, ticks=6, seed=0)
        assert lane["transport"] == "sim"
        _assert_defended(lane)
        assert lane["epoch_consistent"]

    def test_lane_ages_the_epoch_past_the_heal_horizon(self):
        # At epoch 0 the stale-replay rewind saturates and the adversary
        # would be vacuous; the lane must age the topology first.
        lane = run_sim_byzantine_lane(objects=60, ticks=4, seed=1)
        assert lane["topology_epoch"] >= AGED_EPOCH


class TestAsyncioLane:
    def test_defends_and_loses_nothing(self):
        lane = run_asyncio_byzantine_lane(objects=60, ticks=4, seed=0)
        assert lane["transport"] == "asyncio"
        assert lane["registered"] == lane["found"] == 60
        _assert_defended(lane)
