"""The bench tooling itself: trend gate, artifact validation, PR10 checks.

``scripts/bench_trend.py`` and the artifact validation inside
``scripts/bench_smoke.py`` are CI gates — a bug there merges silently
and only shows up as a regression nobody caught.  These tests load the
scripts as modules (they are not packages) and pin the gate logic:
when the trend gate trips, what the validator flags, and what the
``bench_check.py`` PR10 thresholds accept.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"


def load_script(name: str):
    module = sys.modules.get(name)
    if module is not None:
        return module
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def trend():
    return load_script("bench_trend")


@pytest.fixture(scope="module")
def smoke():
    return load_script("bench_smoke")


@pytest.fixture(scope="module")
def check():
    return load_script("bench_check")


def series_of(trend, values_by_metric: dict[str, list]) -> dict:
    """A schema-1 series whose nth entry holds each metric's nth value."""
    nights = max(len(v) for v in values_by_metric.values())
    entries = []
    for night in range(nights):
        metrics = {name: None for name in trend.TRACKED_METRICS}
        for name, values in values_by_metric.items():
            metrics[name] = values[night]
        entries.append({"run": f"r{night}", "label": f"n{night}", "metrics": metrics})
    return {"schema": trend.SCHEMA_VERSION, "series": entries}


class TestTrendGate:
    def test_fewer_than_four_entries_is_always_green(self, trend):
        data = series_of(trend, {"pr10.tick_speedup": [50.0, 40.0, 30.0]})
        assert trend.trend_failures(data) == []

    def test_monotone_drift_past_the_limit_trips(self, trend):
        data = series_of(trend, {"pr10.tick_speedup": [50.0, 47.5, 45.0, 42.5]})
        failures = trend.trend_failures(data)
        assert len(failures) == 1
        assert "pr10.tick_speedup" in failures[0]
        assert "15.0%" in failures[0]

    def test_monotone_but_small_drift_stays_green(self, trend):
        data = series_of(trend, {"pr10.tick_speedup": [50.0, 49.0, 48.0, 47.0]})
        assert trend.trend_failures(data) == []

    def test_non_monotone_drift_stays_green(self, trend):
        # Same 15% total drop, but night 2 recovered: no trend call.
        data = series_of(trend, {"pr10.tick_speedup": [50.0, 44.0, 45.0, 42.5]})
        assert trend.trend_failures(data) == []

    def test_none_breaks_the_chain(self, trend):
        data = series_of(trend, {"pr10.tick_speedup": [50.0, 45.0, None, 40.0]})
        assert trend.trend_failures(data) == []

    def test_lower_is_better_metrics_trip_on_rises(self, trend):
        assert trend.TRACKED_METRICS["pr5.round_reduction_ratio"][2] == "lower"
        data = series_of(
            trend, {"pr5.round_reduction_ratio": [0.40, 0.44, 0.48, 0.52]}
        )
        failures = trend.trend_failures(data)
        assert len(failures) == 1
        assert "pr5.round_reduction_ratio" in failures[0]

    def test_only_the_trailing_window_counts(self, trend):
        # An old collapse followed by three stable nights is not a trend.
        data = series_of(
            trend, {"pr10.tick_speedup": [50.0, 30.0, 30.0, 30.0, 30.0]}
        )
        assert trend.trend_failures(data) == []

    def test_append_prunes_to_max_entries(self, trend):
        data = {"schema": trend.SCHEMA_VERSION, "series": []}
        for i in range(trend.MAX_ENTRIES + 10):
            trend.append_entry(data, f"r{i}", f"n{i}", {})
        assert len(data["series"]) == trend.MAX_ENTRIES
        assert data["series"][0]["run"] == "r10"

    def test_load_series_rejects_unknown_schema(self, trend, tmp_path):
        path = tmp_path / "series.json"
        path.write_text(json.dumps({"schema": 99, "series": []}))
        with pytest.raises(SystemExit):
            trend.load_series(path)

    def test_extract_metrics_tolerates_broken_artifacts(self, trend, tmp_path):
        # Only BENCH_PR10.json exists, and its speedup is a JSON NaN.
        (tmp_path / "BENCH_PR10.json").write_text(
            '{"tick_speedup": NaN, "columnar": {"updates_per_second": 1200.5}}'
        )
        metrics = trend.extract_metrics(tmp_path)
        assert metrics["pr10.tick_speedup"] is None
        assert metrics["pr10.updates_per_second"] == 1200.5
        assert metrics["pr2.load_drop_factor"] is None

    def test_main_append_report_check_round_trip(self, trend, tmp_path, capsys):
        root = tmp_path / "artifacts"
        root.mkdir()
        (root / "BENCH_PR10.json").write_text(
            json.dumps(
                {"tick_speedup": 44.0, "columnar": {"updates_per_second": 1.2e6}}
            )
        )
        series = tmp_path / "series.json"
        argv = ["--series", str(series), "--root", str(root)]
        assert trend.main([*argv, "--append", "--run", "one", "--check"]) == 0
        data = json.loads(series.read_text())
        assert data["series"][0]["metrics"]["pr10.tick_speedup"] == 44.0
        assert "trend gate passed" in capsys.readouterr().out


class TestSmokeArtifactValidation:
    @pytest.fixture
    def bench_root(self, monkeypatch, tmp_path):
        # validate_artifact resolves paths through benchreport.ROOT, the
        # same way the runners write them.
        import benchreport

        monkeypatch.setattr(benchreport, "ROOT", tmp_path)
        return tmp_path

    def write(self, root, payload):
        (root / "BENCH_PR10.json").write_text(json.dumps(payload))

    def test_valid_artifact_has_no_problems(self, smoke, bench_root):
        self.write(
            bench_root,
            {
                "objects": 1_000_000,
                "tick_speedup": 44.0,
                "answers_identical": True,
                "load_monitor_bounded": True,
            },
        )
        keys = smoke.ACCEPTANCE_KEYS["out_pr10"]
        assert smoke.validate_artifact("BENCH_PR10.json", keys) == []

    def test_missing_artifact_is_a_problem(self, smoke, bench_root):
        problems = smoke.validate_artifact("BENCH_PR10.json", ("objects",))
        assert problems and "missing" in problems[0]

    def test_missing_key_is_a_problem(self, smoke, bench_root):
        self.write(bench_root, {"objects": 1_000_000})
        problems = smoke.validate_artifact(
            "BENCH_PR10.json", ("objects", "tick_speedup")
        )
        assert problems == [
            "BENCH_PR10.json: acceptance key 'tick_speedup' missing"
        ]

    def test_nan_is_a_problem_but_none_passes(self, smoke, bench_root):
        self.write(bench_root, {"tick_speedup": float("nan"), "objects": None})
        problems = smoke.validate_artifact(
            "BENCH_PR10.json", ("tick_speedup", "objects")
        )
        assert len(problems) == 1
        assert "non-finite" in problems[0]

    def test_dotted_paths_descend_nested_payloads(self, smoke, bench_root):
        self.write(bench_root, {"scenarios": {"flash_crowd": {}}})
        problems = smoke.validate_artifact(
            "BENCH_PR10.json", ("scenarios.flash_crowd.load_drop_factor",)
        )
        assert problems and "load_drop_factor" in problems[0]

    def test_every_out_attr_has_acceptance_keys(self, smoke):
        assert smoke.ACCEPTANCE_KEYS["out_pr10"] == (
            "objects",
            "tick_speedup",
            "answers_identical",
            "load_monitor_bounded",
        )


GOOD_PR10 = {
    "objects": 1_000_000,
    "tick_speedup": 44.0,
    "answers_identical": True,
    "load_monitor_bounded": True,
    "equivalence": {"mismatches": []},
    "load_monitor": {"tracked_rates": 16},
}


class TestBenchCheckPr10:
    def run_checks(self, check, payload):
        return {
            c.description: c.run(payload)[0] for c in check.CHECKS["BENCH_PR10.json"]
        }

    def test_good_payload_passes_all_four(self, check):
        results = self.run_checks(check, GOOD_PR10)
        assert len(results) == 4
        assert all(results.values()), results

    @pytest.mark.parametrize(
        "patch",
        [
            pytest.param({"objects": 999_999}, id="too-few-objects"),
            pytest.param({"tick_speedup": 4.9}, id="speedup-below-5x"),
            pytest.param({"answers_identical": False}, id="answer-mismatch"),
            pytest.param({"load_monitor_bounded": False}, id="unbounded-monitor"),
        ],
    )
    def test_each_threshold_trips_alone(self, check, patch):
        payload = {**GOOD_PR10, **patch}
        results = self.run_checks(check, payload)
        assert sum(1 for ok in results.values() if not ok) == 1

    def test_missing_field_reports_not_raises(self, check):
        for c in check.CHECKS["BENCH_PR10.json"]:
            ok, observed = c.run({})
            assert not ok
            assert "missing field" in observed
