"""ColumnarIndex internals: slots, free-list reuse, growth, handles.

The conformance and oracle-property suites already prove the columnar
index *answers* like every other ``SpatialIndex``; these tests pin the
machinery those suites cannot see — slot allocation and LIFO reuse,
amortized growth, version-stamped handle invalidation, the registered
extra columns growing in lockstep, and compaction — on both the numpy
and the stdlib-``array`` engine.
"""

import pytest

from repro.geo import Point, Rect
from repro.spatial import ColumnarIndex, StaleHandleError

ENGINES = [
    pytest.param(None, id="numpy"),
    pytest.param(False, id="stdlib"),
]


@pytest.fixture(params=ENGINES)
def make(request):
    return lambda **kw: ColumnarIndex(use_numpy=request.param, **kw)


class TestSlotsAndFreeList:
    def test_slots_assigned_densely(self, make):
        index = make(capacity=4)
        slots = [index.insert_slot(f"o{i}", float(i), 0.0) for i in range(4)]
        assert slots == [0, 1, 2, 3]
        assert [index.id_at(s) for s in slots] == ["o0", "o1", "o2", "o3"]

    def test_remove_frees_slot_for_lifo_reuse(self, make):
        index = make(capacity=8)
        for i in range(4):
            index.insert_slot(f"o{i}", float(i), 0.0)
        index.remove("o1")
        index.remove("o2")
        assert index.free_slots == 2
        # LIFO: the most recently freed slot (o2's, slot 2) goes first.
        assert index.insert_slot("n1", 9.0, 9.0) == 2
        assert index.insert_slot("n2", 9.0, 9.0) == 1
        assert index.free_slots == 0

    def test_removed_slot_is_invisible_to_queries(self, make):
        index = make(capacity=4)
        index.insert("a", Point(1.0, 1.0))
        index.insert("b", Point(2.0, 2.0))
        removed = index.remove("a")
        assert removed == Point(1.0, 1.0)
        everything = Rect(-10.0, -10.0, 10.0, 10.0)
        assert [oid for oid, _ in index.query_rect(everything)] == ["b"]
        assert index.counts_in_rects([everything]) == [1]
        assert len(index) == 1
        assert index.get("a") is None

    def test_duplicate_insert_rejected(self, make):
        index = make()
        index.insert("a", Point(0.0, 0.0))
        with pytest.raises(KeyError):
            index.insert("a", Point(1.0, 1.0))

    def test_remove_unknown_rejected(self, make):
        with pytest.raises(KeyError):
            make().remove("ghost")


class TestGrowth:
    def test_capacity_doubles_past_the_brim(self, make):
        index = make(capacity=2)
        for i in range(5):
            index.insert(f"o{i}", Point(float(i), float(i)))
        assert index.capacity >= 5
        assert len(index) == 5
        assert sorted(oid for oid, _ in index.items()) == [f"o{i}" for i in range(5)]

    def test_growth_preserves_positions_and_columns(self, make):
        index = make(capacity=2)
        index.add_column("t", fill=-1.0)
        index.insert("a", Point(3.0, 4.0))
        index.column("t")[index.slot_of("a")] = 42.0
        for i in range(20):
            index.insert(f"f{i}", Point(float(i), 0.0))
        slot = index.slot_of("a")
        assert index.get("a") == Point(3.0, 4.0)
        assert index.column("t")[slot] == 42.0
        # Slots allocated after the column was registered get its fill.
        assert index.column("t")[index.slot_of("f19")] == -1.0


class TestHandles:
    def test_handle_scatter_updates_positions(self, make):
        index = make()
        for i in range(4):
            index.insert(f"o{i}", Point(0.0, 0.0))
        handle = index.resolve_slots(["o3", "o1"])
        index.update_slots(handle, [30.0, 10.0], [33.0, 11.0])
        assert index.get("o3") == Point(30.0, 33.0)
        assert index.get("o1") == Point(10.0, 11.0)
        assert index.get("o0") == Point(0.0, 0.0)

    def test_unknown_id_fails_resolution(self, make):
        index = make()
        index.insert("a", Point(0.0, 0.0))
        with pytest.raises(KeyError):
            index.resolve_slots(["a", "ghost"])

    def test_update_does_not_invalidate(self, make):
        index = make()
        index.insert("a", Point(0.0, 0.0))
        handle = index.resolve_slots(["a"])
        index.update("a", Point(5.0, 5.0))  # same slot, no remap
        index.check_handle(handle)
        index.update_slots(handle, [7.0], [8.0])
        assert index.get("a") == Point(7.0, 8.0)

    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(lambda ix: ix.insert("new", Point(1.0, 1.0)), id="insert"),
            pytest.param(lambda ix: ix.remove("a"), id="remove"),
            pytest.param(lambda ix: ix.clear(), id="clear"),
        ],
    )
    def test_slot_remapping_staleness(self, make, mutate):
        index = make()
        index.insert("a", Point(0.0, 0.0))
        handle = index.resolve_slots(["a"])
        mutate(index)
        with pytest.raises(StaleHandleError):
            index.check_handle(handle)
        with pytest.raises(StaleHandleError):
            index.update_slots(handle, [1.0], [1.0])

    def test_fill_slots_writes_registered_column(self, make):
        index = make()
        index.add_column("deadline")
        for i in range(3):
            index.insert(f"o{i}", Point(float(i), 0.0))
        handle = index.resolve_slots(["o0", "o2"])
        index.fill_slots("deadline", handle, 99.0)
        col = index.column("deadline")
        assert col[index.slot_of("o0")] == 99.0
        assert col[index.slot_of("o2")] == 99.0


class TestBulkLoadAndCompact:
    def test_bulk_load_arrays_round_trip(self, make):
        index = make(capacity=2)
        ids = [f"o{i}" for i in range(50)]
        xs = [float(i) for i in range(50)]
        ys = [float(50 - i) for i in range(50)]
        handle = index.bulk_load_arrays(ids, xs, ys)
        assert len(handle) == 50
        assert len(index) == 50
        assert index.get("o7") == Point(7.0, 43.0)

    def test_bulk_load_arrays_rejects_duplicates(self, make):
        index = make()
        with pytest.raises(KeyError):
            index.bulk_load_arrays(["a", "a"], [0.0, 1.0], [0.0, 1.0])

    def test_compact_densifies_after_mass_removal(self, make):
        index = make(capacity=4)
        for i in range(32):
            index.insert(f"o{i}", Point(float(i), float(i)))
        for i in range(24):
            index.remove(f"o{i}")
        assert index.free_slots == 24
        version = index.version
        index.compact()
        assert index.version != version
        assert index.free_slots == 0
        assert len(index) == 8
        survivors = {oid: p for oid, p in index.items()}
        assert survivors == {
            f"o{i}": Point(float(i), float(i)) for i in range(24, 32)
        }
        # Every live slot sits below the high-water mark after the pack.
        assert all(slot < 8 for slot, _ in index.live_slots())


class TestNearest:
    def test_nearest_ignores_freed_slots(self, make):
        index = make()
        index.insert("near", Point(1.0, 0.0))
        index.insert("far", Point(100.0, 0.0))
        index.remove("near")
        hits = index.nearest(Point(0.0, 0.0), k=1)
        assert [h.object_id for h in hits] == ["far"]

    def test_ties_break_on_object_id(self, make):
        index = make()
        index.insert("b", Point(1.0, 0.0))
        index.insert("a", Point(-1.0, 0.0))
        hits = index.nearest(Point(0.0, 0.0), k=2)
        assert [h.object_id for h in hits] == ["a", "b"]


class TestEngineSelection:
    def test_forced_stdlib_engine_reports_no_numpy(self):
        index = ColumnarIndex(use_numpy=False)
        assert index._np is None
        index.insert("a", Point(1.0, 2.0))
        assert index.get("a") == Point(1.0, 2.0)

    def test_memory_bytes_tracks_capacity(self, make):
        small = make(capacity=16)
        big = make(capacity=1024)
        assert 0 < small.memory_bytes() < big.memory_bytes()
