"""Conformance suite run against every spatial-index implementation."""

import random

import pytest

from repro.geo import Point, Rect
from repro.spatial import (
    ColumnarIndex,
    GridIndex,
    LinearScanIndex,
    PointQuadtree,
    RTree,
)

ALL_INDEXES = [
    pytest.param(lambda: PointQuadtree(), id="quadtree"),
    pytest.param(lambda: RTree(), id="rtree"),
    pytest.param(lambda: GridIndex(cell_size=25.0), id="grid"),
    pytest.param(lambda: LinearScanIndex(), id="linear"),
    pytest.param(lambda: ColumnarIndex(capacity=8), id="columnar"),
    pytest.param(lambda: ColumnarIndex(capacity=8, use_numpy=False), id="columnar-stdlib"),
]


@pytest.fixture(params=ALL_INDEXES)
def index(request):
    return request.param()


def fill(index, n=100, seed=7, extent=1000.0):
    rng = random.Random(seed)
    entries = {}
    for i in range(n):
        p = Point(rng.uniform(0, extent), rng.uniform(0, extent))
        index.insert(f"obj-{i}", p)
        entries[f"obj-{i}"] = p
    return entries


class TestBasicOperations:
    def test_starts_empty(self, index):
        assert len(index) == 0
        assert list(index.items()) == []

    def test_insert_and_get(self, index):
        index.insert("a", Point(1, 2))
        assert index.get("a") == Point(1, 2)
        assert len(index) == 1
        assert "a" in index

    def test_get_missing_none(self, index):
        assert index.get("missing") is None
        assert "missing" not in index

    def test_duplicate_insert_raises(self, index):
        index.insert("a", Point(0, 0))
        with pytest.raises(KeyError):
            index.insert("a", Point(1, 1))

    def test_remove_returns_point(self, index):
        index.insert("a", Point(3, 4))
        assert index.remove("a") == Point(3, 4)
        assert len(index) == 0
        assert index.get("a") is None

    def test_remove_missing_raises(self, index):
        with pytest.raises(KeyError):
            index.remove("ghost")

    def test_update_moves_entry(self, index):
        index.insert("a", Point(0, 0))
        index.update("a", Point(50, 50))
        assert index.get("a") == Point(50, 50)
        assert len(index) == 1

    def test_update_missing_raises(self, index):
        with pytest.raises(KeyError):
            index.update("ghost", Point(0, 0))

    def test_upsert(self, index):
        index.upsert("a", Point(1, 1))
        index.upsert("a", Point(2, 2))
        assert index.get("a") == Point(2, 2)
        assert len(index) == 1

    def test_items_round_trip(self, index):
        entries = fill(index, n=25)
        assert dict(index.items()) == entries

    def test_bulk_load(self, index):
        entries = [(f"o{i}", Point(i, i)) for i in range(50)]
        index.bulk_load(entries)
        assert len(index) == 50
        assert index.get("o25") == Point(25, 25)


class TestRectQueries:
    def test_empty_index(self, index):
        assert list(index.query_rect(Rect(0, 0, 100, 100))) == []

    def test_all_inside(self, index):
        entries = fill(index, n=40)
        hits = dict(index.query_rect(Rect(-10, -10, 1010, 1010)))
        assert hits == entries

    def test_none_inside(self, index):
        fill(index, n=40)
        assert list(index.query_rect(Rect(5000, 5000, 6000, 6000))) == []

    def test_exact_membership(self, index):
        entries = fill(index, n=200, seed=3)
        rect = Rect(200, 300, 600, 700)
        expected = {oid for oid, p in entries.items() if rect.contains_point(p)}
        got = {oid for oid, _ in index.query_rect(rect)}
        assert got == expected
        assert expected  # the workload actually exercises the rect

    def test_boundary_points_included(self, index):
        index.insert("edge", Point(10, 5))
        index.insert("corner", Point(10, 10))
        index.insert("out", Point(10.5, 5))
        rect = Rect(0, 0, 10, 10)
        got = {oid for oid, _ in index.query_rect(rect)}
        assert got == {"edge", "corner"}

    def test_query_after_updates(self, index):
        fill(index, n=100, seed=11)
        rng = random.Random(99)
        for i in range(100):
            index.update(f"obj-{i}", Point(rng.uniform(0, 1000), rng.uniform(0, 1000)))
        expected = {oid for oid, p in index.items() if Rect(0, 0, 500, 500).contains_point(p)}
        got = {oid for oid, _ in index.query_rect(Rect(0, 0, 500, 500))}
        assert got == expected

    def test_query_after_removals(self, index):
        entries = fill(index, n=100, seed=5)
        for i in range(0, 100, 2):
            index.remove(f"obj-{i}")
        rect = Rect(0, 0, 1000, 1000)
        got = {oid for oid, _ in index.query_rect(rect)}
        assert got == {f"obj-{i}" for i in range(1, 100, 2)}
        assert all(oid in entries for oid in got)


class TestNearest:
    def test_empty(self, index):
        assert index.nearest(Point(0, 0)) == []

    def test_k_zero(self, index):
        index.insert("a", Point(0, 0))
        assert index.nearest(Point(0, 0), k=0) == []

    def test_single_nearest(self, index):
        index.insert("near", Point(1, 0))
        index.insert("far", Point(10, 0))
        hits = index.nearest(Point(0, 0), k=1)
        assert [h.object_id for h in hits] == ["near"]
        assert hits[0].distance == pytest.approx(1.0)

    def test_k_nearest_ordering(self, index):
        for i, x in enumerate([5, 1, 9, 3, 7]):
            index.insert(f"o{i}", Point(x, 0))
        hits = index.nearest(Point(0, 0), k=3)
        assert [h.point.x for h in hits] == [1, 3, 5]

    def test_k_larger_than_population(self, index):
        index.insert("a", Point(0, 0))
        index.insert("b", Point(1, 1))
        assert len(index.nearest(Point(0, 0), k=10)) == 2

    def test_max_distance_filters(self, index):
        index.insert("near", Point(1, 0))
        index.insert("far", Point(100, 0))
        hits = index.nearest(Point(0, 0), k=5, max_distance=50.0)
        assert [h.object_id for h in hits] == ["near"]

    def test_matches_oracle(self, index):
        entries = fill(index, n=300, seed=13)
        oracle = LinearScanIndex()
        for oid, p in entries.items():
            oracle.insert(oid, p)
        probe = Point(400, 400)
        got = index.nearest(probe, k=10)
        expected = oracle.nearest(probe, k=10)
        assert [h.object_id for h in got] == [h.object_id for h in expected]

    def test_probe_outside_extent(self, index):
        fill(index, n=50, seed=17)
        hits = index.nearest(Point(-5000, -5000), k=1)
        assert len(hits) == 1


class TestStress:
    def test_mixed_workload_consistency(self, index):
        """Random interleaving of insert/update/remove stays consistent."""
        rng = random.Random(42)
        shadow = {}
        next_id = 0
        for _ in range(600):
            op = rng.random()
            if op < 0.4 or not shadow:
                oid = f"s{next_id}"
                next_id += 1
                p = Point(rng.uniform(0, 500), rng.uniform(0, 500))
                index.insert(oid, p)
                shadow[oid] = p
            elif op < 0.8:
                oid = rng.choice(list(shadow))
                p = Point(rng.uniform(0, 500), rng.uniform(0, 500))
                index.update(oid, p)
                shadow[oid] = p
            else:
                oid = rng.choice(list(shadow))
                index.remove(oid)
                del shadow[oid]
        assert dict(index.items()) == shadow
        rect = Rect(100, 100, 400, 400)
        expected = {oid for oid, p in shadow.items() if rect.contains_point(p)}
        assert {oid for oid, _ in index.query_rect(rect)} == expected
