"""Tests for the R-tree shrink pass and quadtree orphan bulk rebuild."""

import random

from repro.geo import Point, Rect
from repro.spatial import LinearScanIndex, PointQuadtree, RTree
from repro.spatial.quadtree import _BULK_REINSERT_THRESHOLD


def leaf_mbr_area(tree: RTree) -> float:
    total = 0.0
    stack = [tree._root]
    while stack:
        node = stack.pop()
        if node.leaf:
            if node.mbr is not None:
                total += node.mbr.area
        else:
            stack.extend(node.children)
    return total


class TestRTreeCompact:
    def _drift(self, rng, tree, oracle, ids, moves):
        for _ in range(moves):
            oid = rng.choice(ids)
            pos = oracle.get(oid)
            new = Point(
                min(max(pos.x + rng.uniform(-40, 40), 0.0), 1000.0),
                min(max(pos.y + rng.uniform(-40, 40), 0.0), 1000.0),
            )
            tree.update(oid, new)
            oracle.update(oid, new)

    def test_compact_shrinks_inflated_mbrs(self):
        rng = random.Random(3)
        tree, oracle = RTree(), LinearScanIndex()
        ids = []
        for i in range(300):
            oid = f"o{i}"
            p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.insert(oid, p)
            oracle.insert(oid, p)
            ids.append(oid)
        self._drift(rng, tree, oracle, ids, moves=3000)
        inflated = leaf_mbr_area(tree)
        tree.compact()
        assert leaf_mbr_area(tree) < inflated

    def test_compact_preserves_query_results(self):
        rng = random.Random(4)
        tree, oracle = RTree(), LinearScanIndex()
        ids = []
        for i in range(200):
            oid = f"o{i}"
            p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.insert(oid, p)
            oracle.insert(oid, p)
            ids.append(oid)
        self._drift(rng, tree, oracle, ids, moves=2000)
        tree.compact()
        for _ in range(30):
            rect = Rect.from_points(
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000)),
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000)),
            )
            assert sorted(tree.query_rect(rect)) == sorted(oracle.query_rect(rect))
        probe = Point(500, 500)
        assert [h.object_id for h in tree.nearest(probe, k=5)] == [
            h.object_id for h in oracle.nearest(probe, k=5)
        ]

    def test_compact_on_small_trees_is_safe(self):
        tree = RTree()
        tree.compact()  # empty root-leaf
        tree.insert("a", Point(1, 1))
        tree.compact()
        assert tree.get("a") == Point(1, 1)


class TestQuadtreeOrphanRebuild:
    def test_large_orphan_set_rebuild_keeps_entries(self):
        # Insert a sorted diagonal under one root so removing the root
        # orphans a large (> threshold) chain, then verify every entry
        # survives the shuffled rebuild and queries match the oracle.
        tree, oracle = PointQuadtree(shuffle_seed=5), LinearScanIndex()
        count = _BULK_REINSERT_THRESHOLD * 3
        for i in range(count):
            p = Point(float(i), float(i))
            tree.insert(f"o{i}", p)
            oracle.insert(f"o{i}", p)
        tree.remove("o0")
        oracle.remove("o0")
        assert len(tree) == count - 1
        assert sorted(tree.items()) == sorted(oracle.items())
        rect = Rect(0, 0, count / 2, count / 2)
        assert sorted(tree.query_rect(rect)) == sorted(oracle.query_rect(rect))

    def test_shuffled_rebuild_reduces_chain_depth(self):
        tree = PointQuadtree(shuffle_seed=1)
        count = 200
        for i in range(count):
            tree.insert(f"o{i}", Point(float(i), float(i)))
        # The sorted insert built a pure chain; removing the root
        # triggers the bulk rebuild of all remaining entries.
        assert tree.depth() == count
        tree.remove("o0")
        assert tree.depth() < count / 2

    def test_small_orphan_sets_keep_exact_semantics(self):
        rng = random.Random(9)
        tree, oracle = PointQuadtree(shuffle_seed=2), LinearScanIndex()
        for i in range(64):
            p = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            tree.insert(f"o{i}", p)
            oracle.insert(f"o{i}", p)
        for i in range(0, 64, 3):
            tree.remove(f"o{i}")
            oracle.remove(f"o{i}")
        assert sorted(tree.items()) == sorted(oracle.items())
