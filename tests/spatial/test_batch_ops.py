"""Batch API + in-place fast-path equivalence for every spatial index.

The PR-1 invariant: whatever internal shortcut an index takes —
in-place point rewrites, MBR extension, deferred structural passes —
``update`` and ``update_many`` must leave the index point-for-point
identical (items, rect queries, nearest neighbors) to the seed's
remove+insert baseline.  The workloads here move objects with the
random-waypoint mobility model, the paper's reference movement pattern.
"""

import random

import pytest

from repro.geo import Point, Rect
from repro.sim.mobility import RandomWaypointWalker
from repro.spatial import GridIndex, LinearScanIndex, PointQuadtree, RTree
from repro.spatial.base import SpatialIndex

AREA = Rect(0.0, 0.0, 1000.0, 1000.0)

ALL_INDEXES = [
    pytest.param(lambda: PointQuadtree(), id="quadtree"),
    pytest.param(lambda: RTree(max_entries=4), id="rtree-small-nodes"),
    pytest.param(lambda: RTree(), id="rtree"),
    pytest.param(lambda: GridIndex(cell_size=50.0), id="grid"),
    pytest.param(lambda: LinearScanIndex(), id="linear"),
]


@pytest.fixture(params=ALL_INDEXES)
def factory(request):
    return request.param


def _walker_population(n, seed):
    walkers = {
        f"w{i}": RandomWaypointWalker(
            AREA, seed=seed * 10_000 + i, min_speed=1.0, max_speed=30.0
        )
        for i in range(n)
    }
    return walkers


def _baseline_pair(factory, walkers):
    """(index under test, baseline index fed through remove+insert)."""
    index = factory()
    baseline = factory()
    for oid, walker in walkers.items():
        index.insert(oid, walker.position)
        baseline.insert(oid, walker.position)
    return index, baseline


def _assert_equivalent(index, baseline, rng):
    assert dict(index.items()) == dict(baseline.items())
    for _ in range(10):
        x1, x2 = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
        y1, y2 = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
        rect = Rect(x1, y1, x2, y2)
        assert sorted(index.query_rect(rect)) == sorted(baseline.query_rect(rect))
    for _ in range(10):
        probe = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
        got = index.nearest(probe, k=5)
        expected = baseline.nearest(probe, k=5)
        assert [(h.object_id, h.point) for h in got] == [
            (h.object_id, h.point) for h in expected
        ]


class TestWaypointEquivalence:
    """update / update_many vs remove+insert under waypoint movement."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sequential_update_matches_remove_insert(self, factory, seed):
        rng = random.Random(seed)
        walkers = _walker_population(60, seed)
        index, baseline = _baseline_pair(factory, walkers)
        base_update = SpatialIndex.update
        for _ in range(15):  # ticks
            for oid, walker in walkers.items():
                pos = walker.step(2.0)
                index.update(oid, pos)
                base_update(baseline, oid, pos)
            _assert_equivalent(index, baseline, rng)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_update_many_matches_remove_insert(self, factory, seed):
        rng = random.Random(seed)
        walkers = _walker_population(80, seed)
        index, baseline = _baseline_pair(factory, walkers)
        base_update = SpatialIndex.update
        for _ in range(12):
            moves = [(oid, walker.step(2.0)) for oid, walker in walkers.items()]
            index.update_many(moves)
            for oid, pos in moves:
                base_update(baseline, oid, pos)
            _assert_equivalent(index, baseline, rng)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_mixed_batches_with_jumps_and_churn(self, factory, seed):
        """Batches mixing small moves, region escapes, inserts, removals."""
        rng = random.Random(seed)
        walkers = _walker_population(50, seed)
        index, baseline = _baseline_pair(factory, walkers)
        base_update = SpatialIndex.update
        population = dict(walkers)
        next_id = len(population)
        for _ in range(10):
            moves = []
            for oid, walker in population.items():
                if rng.random() < 0.15:
                    # Teleport: guaranteed to escape any leaf region/MBR.
                    pos = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
                    walker.position = pos
                else:
                    pos = walker.step(2.0)
                moves.append((oid, pos))
            # Occasionally update the same object twice in one batch;
            # the last write must win, as in the sequential stream.
            if moves and rng.random() < 0.7:
                oid, _ = moves[rng.randrange(len(moves))]
                repeat = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
                population[oid].position = repeat
                moves.append((oid, repeat))
            index.update_many(moves)
            for oid, pos in moves:
                base_update(baseline, oid, pos)
            # Churn: remove a couple of objects, insert fresh ones.
            for _ in range(2):
                victim = rng.choice(sorted(population))
                del population[victim]
                index.remove(victim)
                baseline.remove(victim)
                fresh = f"w{next_id}"
                next_id += 1
                walker = RandomWaypointWalker(AREA, seed=next_id)
                population[fresh] = walker
                index.insert(fresh, walker.position)
                baseline.insert(fresh, walker.position)
            _assert_equivalent(index, baseline, rng)


class TestQueryRectMany:
    def test_matches_individual_queries(self, factory):
        rng = random.Random(11)
        walkers = _walker_population(120, 11)
        index, _ = _baseline_pair(factory, walkers)
        index.update_many((oid, w.step(5.0)) for oid, w in walkers.items())
        rects = []
        for _ in range(9):
            x1, x2 = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
            y1, y2 = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
            rects.append(Rect(x1, y1, x2, y2))
        batched = index.query_rect_many(rects)
        assert len(batched) == len(rects)
        for rect, hits in zip(rects, batched):
            assert sorted(hits) == sorted(index.query_rect(rect))

    def test_empty_batch(self, factory):
        index = factory()
        index.insert("a", Point(1, 1))
        assert index.query_rect_many([]) == []

    def test_disjoint_and_overlapping_rects(self, factory):
        index = factory()
        for i in range(30):
            index.insert(f"o{i}", Point(i * 10.0, i * 10.0))
        rects = [
            Rect(0, 0, 95, 95),
            Rect(50, 50, 200, 200),
            Rect(5000, 5000, 6000, 6000),  # empty
            Rect(0, 0, 290, 290),  # everything
        ]
        results = index.query_rect_many(rects)
        assert {oid for oid, _ in results[0]} == {f"o{i}" for i in range(10)}
        assert {oid for oid, _ in results[1]} == {f"o{i}" for i in range(5, 21)}
        assert results[2] == []
        assert {oid for oid, _ in results[3]} == {f"o{i}" for i in range(30)}


class TestBatchEdgeCases:
    def test_update_many_unknown_id_raises(self, factory):
        index = factory()
        index.insert("a", Point(1, 1))
        with pytest.raises(KeyError):
            index.update_many([("a", Point(2, 2)), ("ghost", Point(0, 0))])
        # The move preceding the failure is applied (sequential semantics).
        assert index.get("a") == Point(2, 2)

    def test_update_many_empty(self, factory):
        index = factory()
        index.update_many([])
        assert len(index) == 0

    def test_update_many_accepts_generator(self, factory):
        index = factory()
        for i in range(5):
            index.insert(f"g{i}", Point(i, i))
        index.update_many((f"g{i}", Point(i + 0.5, i + 0.5)) for i in range(5))
        assert index.get("g3") == Point(3.5, 3.5)

    def test_upsert_single_lookup_semantics(self, factory):
        index = factory()
        index.upsert("a", Point(1, 1))
        assert index.get("a") == Point(1, 1)
        index.upsert("a", Point(2, 2))
        assert index.get("a") == Point(2, 2)
        assert len(index) == 1

    def test_bulk_load_duplicate_against_existing_raises(self, factory):
        index = factory()
        index.insert("dup", Point(0, 0))
        with pytest.raises(KeyError):
            index.bulk_load([("fresh", Point(1, 1)), ("dup", Point(2, 2))])

    def test_bulk_load_duplicate_within_batch_raises(self, factory):
        index = factory()
        with pytest.raises(KeyError):
            index.bulk_load([("x", Point(1, 1)), ("x", Point(2, 2))])

    def test_bulk_load_then_query(self, factory):
        index = factory()
        entries = [(f"b{i}", Point(i * 7.0 % 1000, i * 13.0 % 1000)) for i in range(200)]
        index.bulk_load(entries)
        assert len(index) == 200
        assert dict(index.items()) == dict(entries)
        rect = Rect(0, 0, 500, 500)
        expected = {oid for oid, p in entries if rect.contains_point(p)}
        assert {oid for oid, _ in index.query_rect(rect)} == expected


class TestGridBatchSpecifics:
    def test_cells_garbage_collected_through_batches(self):
        grid = GridIndex(cell_size=10.0)
        grid.insert("a", Point(5, 5))
        grid.insert("b", Point(105, 105))
        assert grid.cell_count() == 2
        grid.update_many([("a", Point(205, 205)), ("b", Point(206, 206))])
        assert grid.cell_count() == 1
        assert {oid for oid, _ in grid.query_rect(Rect(200, 200, 210, 210))} == {"a", "b"}

    def test_negative_coordinate_moves(self):
        grid = GridIndex(cell_size=10.0)
        grid.insert("n", Point(5, 5))
        grid.update_many([("n", Point(-15, -25))])
        assert {oid for oid, _ in grid.query_rect(Rect(-30, -30, 0, 0))} == {"n"}
        grid.update("n", Point(-14.5, -24.5))
        assert grid.nearest(Point(-14, -24), k=1)[0].object_id == "n"


class TestRTreeBatchSpecifics:
    def test_mbr_stays_superset_under_moves(self):
        """In-place moves may leave MBRs over-covering, never under."""
        rng = random.Random(42)
        tree = RTree(max_entries=4)
        positions = {}
        for i in range(120):
            p = Point(rng.uniform(0, 500), rng.uniform(0, 500))
            tree.insert(f"o{i}", p)
            positions[f"o{i}"] = p
        for _ in range(400):
            oid = f"o{rng.randrange(120)}"
            p = Point(
                min(500, max(0, positions[oid].x + rng.uniform(-20, 20))),
                min(500, max(0, positions[oid].y + rng.uniform(-20, 20))),
            )
            positions[oid] = p
            tree.update(oid, p)
        # Every stored point must be covered by its leaf MBR chain up to
        # the root (validity of the superset invariant).
        stack = [tree._root]
        covered = 0
        while stack:
            node = stack.pop()
            if node.leaf:
                for oid, p in node.entries:
                    assert node.mbr.contains_point(p)
                    covered += 1
            else:
                for child in node.children:
                    assert node.mbr.contains_rect(child.mbr)
                    stack.append(child)
        assert covered == 120
