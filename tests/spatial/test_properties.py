"""Property-based tests: every real index agrees with the linear oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Point, Rect
from repro.spatial import (
    ColumnarIndex,
    GridIndex,
    LinearScanIndex,
    PointQuadtree,
    RTree,
)

coord = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
point = st.builds(Point, coord, coord)

FACTORIES = [
    pytest.param(lambda: PointQuadtree(), id="quadtree"),
    pytest.param(lambda: RTree(max_entries=4), id="rtree-small-nodes"),
    pytest.param(lambda: RTree(max_entries=16), id="rtree-large-nodes"),
    pytest.param(lambda: GridIndex(cell_size=50.0), id="grid"),
    # Tiny starting capacity so hypothesis batches force growth + reuse.
    pytest.param(lambda: ColumnarIndex(capacity=4), id="columnar"),
    pytest.param(lambda: ColumnarIndex(capacity=4, use_numpy=False), id="columnar-stdlib"),
]


@st.composite
def entry_batches(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    pts = draw(st.lists(point, min_size=n, max_size=n))
    return [(f"e{i}", p) for i, p in enumerate(pts)]


@st.composite
def query_rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@pytest.mark.parametrize("factory", FACTORIES)
class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(batch=entry_batches(), rect=query_rects())
    def test_rect_query_matches_oracle(self, factory, batch, rect):
        index = factory()
        oracle = LinearScanIndex()
        for oid, p in batch:
            index.insert(oid, p)
            oracle.insert(oid, p)
        assert {oid for oid, _ in index.query_rect(rect)} == {
            oid for oid, _ in oracle.query_rect(rect)
        }

    @settings(max_examples=60, deadline=None)
    @given(batch=entry_batches(), probe=point, k=st.integers(min_value=1, max_value=8))
    def test_nearest_matches_oracle_distances(self, factory, batch, probe, k):
        index = factory()
        oracle = LinearScanIndex()
        for oid, p in batch:
            index.insert(oid, p)
            oracle.insert(oid, p)
        got = index.nearest(probe, k=k)
        expected = oracle.nearest(probe, k=k)
        # Distances must agree exactly; ids may differ only on ties.
        assert [h.distance for h in got] == pytest.approx(
            [h.distance for h in expected]
        )
        assert [h.object_id for h in got] == [h.object_id for h in expected]

    @settings(max_examples=40, deadline=None)
    @given(
        batch=entry_batches(),
        removals=st.sets(st.integers(min_value=0, max_value=59)),
        rect=query_rects(),
    )
    def test_removal_sequences_match_oracle(self, factory, batch, removals, rect):
        index = factory()
        oracle = LinearScanIndex()
        for oid, p in batch:
            index.insert(oid, p)
            oracle.insert(oid, p)
        for i in removals:
            oid = f"e{i}"
            if oracle.get(oid) is not None:
                index.remove(oid)
                oracle.remove(oid)
        assert dict(index.items()) == dict(oracle.items())
        assert {oid for oid, _ in index.query_rect(rect)} == {
            oid for oid, _ in oracle.query_rect(rect)
        }

    @settings(max_examples=40, deadline=None)
    @given(
        batch=entry_batches(),
        moves=st.lists(
            st.tuples(st.integers(min_value=0, max_value=59), point), max_size=30
        ),
        probe=point,
    )
    def test_update_sequences_match_oracle(self, factory, batch, moves, probe):
        index = factory()
        oracle = LinearScanIndex()
        for oid, p in batch:
            index.insert(oid, p)
            oracle.insert(oid, p)
        for i, new_point in moves:
            oid = f"e{i}"
            if oracle.get(oid) is not None:
                index.update(oid, new_point)
                oracle.update(oid, new_point)
        got = index.nearest(probe, k=5)
        expected = oracle.nearest(probe, k=5)
        assert [h.object_id for h in got] == [h.object_id for h in expected]


class TestQuadtreeSpecifics:
    def test_duplicate_coordinates_supported(self):
        tree = PointQuadtree()
        p = Point(5, 5)
        for i in range(10):
            tree.insert(f"dup{i}", p)
        assert len(tree) == 10
        assert {oid for oid, _ in tree.query_rect(Rect(5, 5, 5, 5))} == {
            f"dup{i}" for i in range(10)
        }
        tree.remove("dup4")
        assert len(tree) == 9
        assert tree.get("dup4") is None

    def test_sorted_insert_then_query(self):
        """Pathological (sorted) insert order must still answer correctly."""
        tree = PointQuadtree()
        for i in range(500):
            tree.insert(f"o{i}", Point(float(i), float(i)))
        hits = {oid for oid, _ in tree.query_rect(Rect(100, 100, 110, 110))}
        assert hits == {f"o{i}" for i in range(100, 111)}

    def test_bulk_load_bounds_depth(self):
        tree = PointQuadtree(shuffle_seed=1)
        tree.bulk_load((f"o{i}", Point(float(i), float(i))) for i in range(1000))
        # Shuffled insertion keeps a diagonal workload's depth near log4(n).
        assert tree.depth() < 60

    def test_depth_of_empty_tree(self):
        assert PointQuadtree().depth() == 0


class TestRTreeSpecifics:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=7)

    def test_depth_grows_then_shrinks(self):
        tree = RTree(max_entries=4)
        for i in range(200):
            tree.insert(f"o{i}", Point(i % 20 * 10.0, i // 20 * 10.0))
        assert tree.depth() > 1
        for i in range(195):
            tree.remove(f"o{i}")
        assert len(tree) == 5
        remaining = {oid for oid, _ in tree.query_rect(Rect(-1, -1, 1000, 1000))}
        assert remaining == {f"o{i}" for i in range(195, 200)}

    def test_root_shrinks_to_leaf(self):
        tree = RTree(max_entries=4)
        for i in range(100):
            tree.insert(f"o{i}", Point(float(i), 0.0))
        for i in range(100):
            tree.remove(f"o{i}")
        assert len(tree) == 0
        assert tree.depth() == 1
        tree.insert("fresh", Point(1, 1))
        assert tree.get("fresh") == Point(1, 1)


class TestGridSpecifics:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0.0)

    def test_cells_garbage_collected(self):
        grid = GridIndex(cell_size=10.0)
        grid.insert("a", Point(5, 5))
        grid.insert("b", Point(105, 105))
        assert grid.cell_count() == 2
        grid.remove("a")
        assert grid.cell_count() == 1
        grid.update("b", Point(5, 5))
        assert grid.cell_count() == 1

    def test_negative_coordinates(self):
        grid = GridIndex(cell_size=10.0)
        grid.insert("neg", Point(-15, -25))
        assert grid.get("neg") == Point(-15, -25)
        assert {oid for oid, _ in grid.query_rect(Rect(-30, -30, 0, 0))} == {"neg"}
        hits = grid.nearest(Point(-14, -24), k=1)
        assert hits[0].object_id == "neg"
