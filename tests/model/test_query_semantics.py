"""Tests for the exact query semantics of Section 3.2.

``TestFigure3`` and ``TestFigure4`` reconstruct the paper's worked
examples (its Figures 3 and 4) as concrete geometric scenarios and assert
the inclusion/exclusion outcomes the figures depict.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Point, Polygon, Rect
from repro.model import (
    InvalidQueryError,
    LocationDescriptor,
    NearestNeighborQuery,
    PositionQuery,
    RangeQuery,
    candidate_bounds,
    nearest_neighbor,
    overlap,
    qualifies_for_range,
    range_query,
)

AREA = Rect(0, 0, 100, 100)


def ld(x, y, acc):
    return LocationDescriptor(Point(x, y), acc)


class TestQueryValidation:
    def test_position_query_needs_id(self):
        with pytest.raises(InvalidQueryError):
            PositionQuery("")

    def test_overlap_zero_rejected(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery(AREA, req_overlap=0.0)

    def test_overlap_above_one_rejected(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery(AREA, req_overlap=1.5)

    def test_negative_acc_rejected(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery(AREA, req_acc=-1.0)

    def test_negative_near_qual_rejected(self):
        with pytest.raises(InvalidQueryError):
            NearestNeighborQuery(Point(0, 0), near_qual=-0.1)


class TestOverlap:
    def test_fully_inside_is_one(self):
        assert overlap(AREA, ld(50, 50, 10)) == pytest.approx(1.0)

    def test_fully_outside_is_zero(self):
        assert overlap(AREA, ld(500, 500, 10)) == 0.0

    def test_center_on_edge_is_half(self):
        assert overlap(AREA, ld(100, 50, 10)) == pytest.approx(0.5)

    def test_center_on_corner_is_quarter(self):
        assert overlap(AREA, ld(0, 0, 10)) == pytest.approx(0.25)

    def test_zero_accuracy_point_semantics(self):
        assert overlap(AREA, ld(50, 50, 0)) == 1.0
        assert overlap(AREA, ld(150, 50, 0)) == 0.0

    def test_polygon_area(self):
        triangle = Polygon([Point(0, 0), Point(100, 0), Point(0, 100)])
        assert overlap(triangle, ld(10, 10, 5)) == pytest.approx(1.0)
        assert overlap(triangle, ld(90, 90, 5)) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=80)
    @given(
        st.floats(min_value=-200, max_value=300),
        st.floats(min_value=-200, max_value=300),
        st.floats(min_value=0.1, max_value=100),
    )
    def test_overlap_in_unit_interval(self, x, y, acc):
        value = overlap(AREA, ld(x, y, acc))
        assert 0.0 <= value <= 1.0


class TestFigure3:
    """The paper's range-query example: area a, reqOverlap=0.3, reqAcc.

    o1 fully inside (100% overlap)          -> included
    o2 fully outside                         -> not included
    o3 overlap ~50% (>= threshold)           -> included
    o4 overlap ~10% (< threshold)            -> not included
    o5 inside but accuracy worse than reqAcc -> not included
    """

    REQ_ACC = 50.0
    REQ_OVERLAP = 0.3

    ENTRIES = [
        ("o1", ld(50, 50, 10)),    # 100 % overlap
        ("o2", ld(200, 200, 10)),  # 0 % overlap
        ("o3", ld(100, 50, 10)),   # centered on the boundary: 50 %
        ("o4", ld(108, 50, 10)),   # mostly outside: ~5-10 %
        ("o5", ld(50, 50, 60)),    # insufficient accuracy (60 > reqAcc 50)
    ]

    def query(self):
        return RangeQuery(AREA, req_acc=self.REQ_ACC, req_overlap=self.REQ_OVERLAP)

    def test_membership_matches_figure(self):
        result = range_query(self.ENTRIES, self.query())
        assert [oid for oid, _ in result] == ["o1", "o3"]

    def test_o4_fails_on_overlap_not_accuracy(self):
        entry = dict(self.ENTRIES)["o4"]
        assert entry.acc <= self.REQ_ACC
        assert overlap(AREA, entry) < self.REQ_OVERLAP

    def test_o5_fails_on_accuracy_alone(self):
        entry = dict(self.ENTRIES)["o5"]
        assert overlap(AREA, entry) > self.REQ_OVERLAP
        assert not qualifies_for_range(AREA, entry, self.REQ_ACC, self.REQ_OVERLAP)

    def test_lower_threshold_admits_o4(self):
        query = RangeQuery(AREA, req_acc=self.REQ_ACC, req_overlap=0.01)
        result = range_query(self.ENTRIES, query)
        assert "o4" in [oid for oid, _ in result]


class TestFigure4:
    """The paper's nearest-neighbor example.

    Probe p at the origin; o is nearest among accuracy-qualifying
    objects; o1 falls inside the nearQual ring, o2 outside it, o3 is
    ignored for insufficient accuracy even though it is closest.
    """

    REQ_ACC = 50.0
    NEAR_QUAL = 60.0

    ENTRIES = [
        ("o", ld(100, 0, 30)),
        ("o1", ld(140, 0, 30)),   # 140 <= 100 + 60 -> in nearObjSet
        ("o2", ld(300, 0, 30)),   # 300 >  100 + 60 -> out
        ("o3", ld(50, 0, 80)),    # closest, but acc 80 > reqAcc 50
    ]

    def query(self, near_qual=None):
        return NearestNeighborQuery(
            Point(0, 0),
            req_acc=self.REQ_ACC,
            near_qual=self.NEAR_QUAL if near_qual is None else near_qual,
        )

    def test_selected_object(self):
        result = nearest_neighbor(self.ENTRIES, self.query())
        assert result.nearest is not None
        assert result.nearest[0] == "o"

    def test_near_set_membership(self):
        result = nearest_neighbor(self.ENTRIES, self.query())
        assert [oid for oid, _ in result.near_set] == ["o1"]

    def test_guaranteed_minimal_distance(self):
        result = nearest_neighbor(self.ENTRIES, self.query())
        assert result.guaranteed_min_distance == pytest.approx(100.0 - self.REQ_ACC)

    def test_near_qual_zero_gives_empty_set(self):
        result = nearest_neighbor(self.ENTRIES, self.query(near_qual=0.0))
        assert result.near_set == ()

    def test_no_qualifying_objects(self):
        result = nearest_neighbor(
            [("bad", ld(10, 0, 500))], NearestNeighborQuery(Point(0, 0), req_acc=50.0)
        )
        assert result.nearest is None
        assert result.near_set == ()


class TestRangeQueryFunction:
    def test_empty_entries(self):
        assert range_query([], RangeQuery(AREA, req_overlap=0.5)) == []

    def test_accepts_dict_input(self):
        entries = {"a": ld(50, 50, 5), "b": ld(500, 500, 5)}
        result = range_query(entries, RangeQuery(AREA, req_overlap=0.5))
        assert [oid for oid, _ in result] == ["a"]

    def test_result_sorted_by_id(self):
        entries = [("z", ld(10, 10, 1)), ("a", ld(20, 20, 1)), ("m", ld(30, 30, 1))]
        result = range_query(entries, RangeQuery(AREA, req_overlap=0.5))
        assert [oid for oid, _ in result] == ["a", "m", "z"]

    def test_candidate_bounds_enlarges_by_req_acc(self):
        query = RangeQuery(Rect(0, 0, 100, 100), req_acc=25.0, req_overlap=0.5)
        assert candidate_bounds(query) == Rect(-25, -25, 125, 125)

    def test_candidate_bounds_unbounded_acc_still_finite(self):
        # With unbounded reqAcc, the overlap threshold itself caps the
        # qualifying radius at sqrt(SIZE(A) / (pi * reqOverlap)).
        bounds = candidate_bounds(RangeQuery(AREA, req_overlap=0.5))
        expected_margin = (AREA.area / (0.5 * 3.141592653589793)) ** 0.5
        assert bounds.min_x == pytest.approx(-expected_margin)
        assert bounds.max_x == pytest.approx(100 + expected_margin)

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-150, max_value=250),
                st.floats(min_value=-150, max_value=250),
                st.floats(min_value=0, max_value=60),
            ),
            max_size=20,
        ),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0, max_value=100),
    )
    def test_members_always_within_enlarged_area(self, raw, req_overlap, req_acc):
        entries = [(f"o{i}", ld(x, y, a)) for i, (x, y, a) in enumerate(raw)]
        query = RangeQuery(AREA, req_acc=req_acc, req_overlap=req_overlap)
        result = range_query(entries, query)
        bounds = candidate_bounds(query)
        assert bounds is not None
        for _, descriptor in result:
            # Any qualifying object's position must lie inside the
            # Enlarge(area, reqAcc) rect — this is exactly why Algorithm
            # 6-5 enlarges before comparing with service areas.
            assert bounds.contains_point(descriptor.pos)

    @settings(max_examples=60)
    @given(st.floats(min_value=0.05, max_value=1.0), st.floats(min_value=0.05, max_value=1.0))
    def test_monotone_in_threshold(self, t1, t2):
        entries = [
            ("a", ld(50, 50, 20)),
            ("b", ld(100, 50, 20)),
            ("c", ld(110, 50, 20)),
            ("d", ld(95, 95, 30)),
        ]
        lo, hi = sorted((t1, t2))
        loose = {oid for oid, _ in range_query(entries, RangeQuery(AREA, req_overlap=lo))}
        strict = {oid for oid, _ in range_query(entries, RangeQuery(AREA, req_overlap=hi))}
        assert strict <= loose


class TestNearestNeighborProperties:
    @settings(max_examples=80)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-500, max_value=500),
                st.floats(min_value=-500, max_value=500),
                st.floats(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=25,
        ),
        st.floats(min_value=-200, max_value=200),
        st.floats(min_value=-200, max_value=200),
    )
    def test_two_req_acc_ring_guarantee(self, raw, px, py):
        """nearQual = 2*reqAcc includes every potentially-closer object."""
        req_acc = 50.0
        probe = Point(px, py)
        entries = [(f"o{i}", ld(x, y, a)) for i, (x, y, a) in enumerate(raw)]
        result = nearest_neighbor(
            entries, NearestNeighborQuery(probe, req_acc=req_acc, near_qual=2 * req_acc)
        )
        assert result.nearest is not None
        nearest_id, nearest_ld = result.nearest
        d_nearest = nearest_ld.pos.distance_to(probe)
        near_ids = {oid for oid, _ in result.near_set}
        for oid, descriptor in entries:
            if oid == nearest_id or descriptor.acc > req_acc:
                continue
            d = descriptor.pos.distance_to(probe)
            could_be_closer = d - descriptor.acc <= d_nearest + nearest_ld.acc
            if could_be_closer:
                assert oid in near_ids

    @settings(max_examples=80)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-500, max_value=500),
                st.floats(min_value=-500, max_value=500),
                st.floats(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_nearest_minimises_recorded_distance(self, raw):
        probe = Point(0, 0)
        entries = [(f"o{i}", ld(x, y, a)) for i, (x, y, a) in enumerate(raw)]
        result = nearest_neighbor(entries, NearestNeighborQuery(probe, req_acc=100.0))
        if result.nearest is None:
            return
        d_selected = result.nearest[1].pos.distance_to(probe)
        for _, descriptor in entries:
            if descriptor.acc <= 100.0:
                assert d_selected <= descriptor.pos.distance_to(probe) + 1e-9

    def test_guaranteed_distance_floor_zero(self):
        result = nearest_neighbor(
            [("close", ld(5, 0, 2))], NearestNeighborQuery(Point(0, 0), req_acc=50.0)
        )
        assert result.guaranteed_min_distance == 0.0

    def test_guaranteed_distance_with_infinite_req_acc(self):
        result = nearest_neighbor(
            [("a", ld(100, 0, 2))], NearestNeighborQuery(Point(0, 0))
        )
        assert result.guaranteed_min_distance == 0.0

    def test_tie_broken_by_id(self):
        entries = [("b", ld(10, 0, 1)), ("a", ld(-10, 0, 1))]
        result = nearest_neighbor(entries, NearestNeighborQuery(Point(0, 0)))
        assert result.nearest[0] == "a"

    def test_near_set_sorted_by_distance(self):
        entries = [
            ("n", ld(10, 0, 1)),
            ("far", ld(50, 0, 1)),
            ("mid", ld(30, 0, 1)),
        ]
        result = nearest_neighbor(
            entries, NearestNeighborQuery(Point(0, 0), near_qual=100.0)
        )
        distances = [e[1].pos.distance_to(Point(0, 0)) for e in result.near_set]
        assert distances == sorted(distances)
