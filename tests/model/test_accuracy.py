"""Tests for accuracy negotiation (Algorithm 6-1 lines 3-8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import AccuracyModel, NegotiationError

acc = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestAccuracyModel:
    def test_achievable_is_floor_plus_slack(self):
        model = AccuracyModel(sensor_floor=10.0, update_slack=5.0)
        assert model.achievable == 15.0

    def test_negative_parameters_rejected(self):
        with pytest.raises(NegotiationError):
            AccuracyModel(sensor_floor=-1.0)

    def test_negotiate_within_range(self):
        model = AccuracyModel(sensor_floor=10.0, update_slack=5.0)
        # Client desires 20 m, accepts up to 100 m; service can do 15 m,
        # so it offers exactly the desired 20 m.
        assert model.negotiate(des_acc=20.0, min_acc=100.0) == 20.0

    def test_negotiate_clamped_to_achievable(self):
        model = AccuracyModel(sensor_floor=10.0, update_slack=5.0)
        # Client desires 1 m; the service can only do 15 m but the client
        # accepts up to 30 m: offer 15 m.
        assert model.negotiate(des_acc=1.0, min_acc=30.0) == 15.0

    def test_negotiate_fails_when_too_coarse(self):
        model = AccuracyModel(sensor_floor=100.0, update_slack=0.0)
        assert model.negotiate(des_acc=1.0, min_acc=50.0) is None

    def test_inverted_range_raises(self):
        model = AccuracyModel()
        with pytest.raises(NegotiationError):
            model.negotiate(des_acc=100.0, min_acc=10.0)

    def test_aged_accuracy(self):
        model = AccuracyModel(max_speed=10.0)
        assert model.aged_accuracy(base_acc=25.0, elapsed=3.0) == 55.0

    def test_aged_accuracy_negative_elapsed_raises(self):
        with pytest.raises(NegotiationError):
            AccuracyModel().aged_accuracy(10.0, -1.0)

    @given(des=acc, extra=acc)
    def test_offer_respects_both_bounds(self, des, extra):
        model = AccuracyModel(sensor_floor=10.0, update_slack=5.0)
        min_acc = des + extra
        offered = model.negotiate(des, min_acc)
        if offered is not None:
            # Never better than desired (privacy), never worse than minimum.
            assert des <= offered <= min_acc
            assert offered >= model.achievable
        else:
            assert model.achievable > min_acc
