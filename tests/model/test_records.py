"""Tests for service-model records (Section 3 / Fig. 2 semantics)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import Point
from repro.model import LocationDescriptor, RegistrationInfo, SightingRecord
from repro.model.records import InvalidRecordError

finite = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)
acc = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestLocationDescriptor:
    def test_negative_accuracy_rejected(self):
        with pytest.raises(InvalidRecordError):
            LocationDescriptor(Point(0, 0), -1.0)

    def test_location_area_is_circle(self):
        ld = LocationDescriptor(Point(10, 20), 5.0)
        assert ld.location_area.center == Point(10, 20)
        assert ld.location_area.radius == 5.0

    def test_could_contain_fig2_invariant(self):
        ld = LocationDescriptor(Point(0, 0), 10.0)
        assert ld.could_contain(Point(6, 8))      # distance 10, on boundary
        assert not ld.could_contain(Point(8, 8))  # distance ~11.3

    def test_zero_accuracy_is_exact(self):
        ld = LocationDescriptor(Point(5, 5), 0.0)
        assert ld.could_contain(Point(5, 5))
        assert not ld.could_contain(Point(5.001, 5))

    def test_with_accuracy(self):
        ld = LocationDescriptor(Point(0, 0), 10.0)
        assert ld.with_accuracy(20.0).acc == 20.0
        assert ld.with_accuracy(20.0).pos == ld.pos

    @given(st.builds(Point, finite, finite), acc, st.builds(Point, finite, finite))
    def test_could_contain_matches_distance(self, pos, accuracy, real):
        ld = LocationDescriptor(pos, accuracy)
        assert ld.could_contain(real) == (pos.distance_to(real) <= accuracy)


class TestSightingRecord:
    def test_empty_id_rejected(self):
        with pytest.raises(InvalidRecordError):
            SightingRecord("", 0.0, Point(0, 0), 1.0)

    def test_negative_sensor_accuracy_rejected(self):
        with pytest.raises(InvalidRecordError):
            SightingRecord("o", 0.0, Point(0, 0), -0.5)

    def test_aged_at_sighting_time(self):
        s = SightingRecord("o", 100.0, Point(1, 1), 10.0)
        ld = s.aged(now=100.0, max_speed=30.0)
        assert ld.acc == 10.0
        assert ld.pos == Point(1, 1)

    def test_aged_grows_linearly(self):
        s = SightingRecord("o", 0.0, Point(0, 0), 10.0)
        assert s.aged(now=2.0, max_speed=5.0).acc == pytest.approx(20.0)

    def test_aging_backwards_rejected(self):
        s = SightingRecord("o", 100.0, Point(0, 0), 10.0)
        with pytest.raises(InvalidRecordError):
            s.aged(now=99.0, max_speed=5.0)

    @given(
        acc,
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=3600, allow_nan=False),
        st.floats(min_value=0, max_value=3600, allow_nan=False),
    )
    def test_aging_is_monotone(self, acc_sens, speed, t1, t2):
        s = SightingRecord("o", 0.0, Point(0, 0), acc_sens)
        early, late = sorted((t1, t2))
        assert s.aged(early, speed).acc <= s.aged(late, speed).acc


class TestRegistrationInfo:
    def test_valid_range(self):
        info = RegistrationInfo("client-1", des_acc=10.0, min_acc=50.0)
        assert info.accepts(30.0)
        assert info.accepts(50.0)
        assert not info.accepts(51.0)

    def test_inverted_range_rejected(self):
        # des_acc must be the *tighter* (smaller) bound.
        with pytest.raises(InvalidRecordError):
            RegistrationInfo("client-1", des_acc=50.0, min_acc=10.0)

    def test_negative_rejected(self):
        with pytest.raises(InvalidRecordError):
            RegistrationInfo("client-1", des_acc=-1.0, min_acc=10.0)

    def test_equal_bounds_allowed(self):
        info = RegistrationInfo("c", des_acc=25.0, min_acc=25.0)
        assert info.accepts(25.0)
        assert not info.accepts(25.1)
