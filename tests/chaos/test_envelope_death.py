"""Protocol-lane death detection: an envelope that exhausts its
``RetryPolicy`` notifies the service's envelope-death listeners, and a
watching ``RecoveryCoordinator`` confirms and recovers the suspect —
no harness-side liveness polling anywhere."""

import pytest

from repro.chaos import RecoveryCoordinator, inject_crash
from repro.cluster.planner import SplitPlan
from repro.core import LocationService, build_table2_hierarchy
from repro.core.service import drive_update_envelope
from repro.errors import TransportError
from repro.geo import Point, Rect
from repro.model import SightingRecord


def _service():
    return LocationService(build_table2_hierarchy(), sighting_ttl=1e9)


def _drive_batch(svc, dest, sightings, timeout=0.5, retries=2):
    reporter = svc._reporter()
    return svc.run(
        drive_update_envelope(
            reporter,
            svc,
            dest,
            lambda: tuple(sightings),
            timeout,
            retries,
        )
    )


class TestEnvelopeDeathListener:
    def test_exhaustion_notifies_with_dest_and_attempts(self):
        svc = _service()
        svc.register("o1", Point(100, 100))
        deaths = []
        svc.add_envelope_death_listener(
            lambda dest, what, attempts: deaths.append((dest, what, attempts))
        )
        inject_crash(svc, "root.0")
        with pytest.raises(TransportError):
            _drive_batch(
                svc, "root.0", [SightingRecord("o1", 1.0, Point(110, 110), 10.0)]
            )
        assert deaths == [("root.0", "update", 3)]

    def test_answered_envelope_stays_silent(self):
        svc = _service()
        svc.register("o1", Point(100, 100))
        deaths = []
        svc.add_envelope_death_listener(lambda *a: deaths.append(a))
        _drive_batch(
            svc, "root.0", [SightingRecord("o1", 1.0, Point(110, 110), 10.0)]
        )
        assert deaths == []

    def test_remove_listener(self):
        svc = _service()
        listener = lambda *a: None  # noqa: E731
        svc.add_envelope_death_listener(listener)
        svc.add_envelope_death_listener(listener)  # idempotent
        assert svc._envelope_death_listeners == [listener]
        svc.remove_envelope_death_listener(listener)
        svc.remove_envelope_death_listener(listener)  # idempotent
        assert svc._envelope_death_listeners == []


class TestCoordinatorWatch:
    def _crashed_leaf_fixture(self):
        """A depth-2 corner (so merge recovery has a parent), an object
        homed there, and the leaf crashed."""
        svc = _service()
        svc.register("o1", Point(100, 100))
        from repro.cluster.migration import MigrationExecutor

        executor = MigrationExecutor(svc)
        children = (
            ("root.0/c.0", Rect(0.0, 0.0, 375.0, 750.0)),
            ("root.0/c.1", Rect(375.0, 0.0, 750.0, 750.0)),
        )
        report = executor.execute(
            SplitPlan(
                leaf_id="root.0",
                axis="x",
                cuts=(375.0,),
                children=children,
                reason="test prep",
            )
        )
        victim = report.new_homes["o1"]
        coordinator = RecoveryCoordinator(svc, executor=executor).watch()
        inject_crash(svc, victim)
        return svc, coordinator, victim

    def test_suspect_recorded_on_exhaustion(self):
        svc, coordinator, victim = self._crashed_leaf_fixture()
        with pytest.raises(TransportError):
            _drive_batch(
                svc, victim, [SightingRecord("o1", 1.0, Point(101, 101), 10.0)]
            )
        assert coordinator.suspects == {victim: 1}

    def test_process_suspects_confirms_then_recovers(self):
        svc, coordinator, victim = self._crashed_leaf_fixture()
        with pytest.raises(TransportError):
            _drive_batch(
                svc, victim, [SightingRecord("o1", 1.0, Point(101, 101), 10.0)]
            )
        results = coordinator.process_suspects(strategy="merge")
        assert victim in results
        report = results[victim]
        assert report is not None and report.strategy == "merge"
        assert report.detection_attempts >= 1
        assert coordinator.suspects == {}
        # The region re-homed; sightings are soft state, so the next
        # ordinary position report makes the object queryable again.
        _drive_batch(
            svc,
            report.new_home,
            [SightingRecord("o1", 2.0, Point(102, 102), 10.0)],
        )
        svc.settle()
        assert svc.pos_query("o1") is not None

    def test_live_suspect_survives_confirmation(self):
        """A destination that was merely slow (transient loss) answers a
        probe and is not recovered."""
        svc = _service()
        svc.register("o1", Point(100, 100))
        coordinator = RecoveryCoordinator(svc).watch()
        coordinator._on_envelope_death("root.0", "update", 3)  # false alarm
        results = coordinator.process_suspects()
        assert results == {"root.0": None}
        assert "root.0" in svc.servers  # untouched

    def test_unwatch_stops_recording(self):
        svc = _service()
        svc.register("o1", Point(100, 100))
        coordinator = RecoveryCoordinator(svc).watch()
        coordinator.unwatch()
        inject_crash(svc, "root.0")
        with pytest.raises(TransportError):
            _drive_batch(
                svc, "root.0", [SightingRecord("o1", 1.0, Point(110, 110), 10.0)]
            )
        assert coordinator.suspects == {}
