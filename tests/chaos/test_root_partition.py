"""Root-partition survival: standby apex promotion (PR 9).

The PR-6 recovery strategies re-route *through* a healthy apex; these
tests cover the case where the apex itself is unreachable —
:meth:`~repro.chaos.RecoveryCoordinator.recover_apex` promotes a
standby root (WAL-replayed forwarding log, anti-entropy sync from the
children, re-parented configs, epoch bump) — and the full scenario
(:func:`repro.sim.chaos.root_partition_scenario`) whose numbers gate
``BENCH_PR9.json``.
"""

from repro.chaos import FaultInjector, RecoveryCoordinator
from repro.core import messages as m
from repro.geo import Point
from repro.sim.chaos import root_partition_scenario
from repro.sim.scenario import table2_service

from tests.cluster.test_migration import Reporter


def _sever_root(svc, injector: FaultInjector) -> str:
    """Isolate the apex from *every* endpoint — servers and probers."""
    root_id = svc.hierarchy.root_id
    others = [addr for addr in svc.network.addresses() if addr != root_id]
    injector.partition([root_id], others)
    return root_id


class TestRecoverApex:
    def test_promotes_standby_with_replayed_paths(self):
        svc, homes = table2_service(object_count=60, seed=9)
        injector = FaultInjector(svc.network, seed=9)
        coordinator = RecoveryCoordinator(svc)  # prober joins before the cut
        root_id = _sever_root(svc, injector)
        old_epoch = svc.hierarchy.epoch

        report = coordinator.recover_apex()
        assert report is not None and report.strategy == "promote"
        standby = report.new_home
        assert standby != root_id and standby in svc.servers
        assert root_id not in svc.servers  # the relic left the registry
        assert svc.hierarchy.root_id == standby
        assert svc.hierarchy.epoch == old_epoch + 1

        # The forwarding log survived: every object's path through the
        # apex now routes via the standby.
        promoted = svc.servers[standby]
        for oid, home in homes.items():
            ref = promoted.visitors.forward_ref(oid)
            assert ref is not None
            assert svc.hierarchy.parent_of(home) == ref or ref == home
        svc.settle()
        svc.check_consistency()

    def test_cross_subtree_query_flows_through_the_standby(self):
        svc, homes = table2_service(object_count=60, seed=9)
        injector = FaultInjector(svc.network, seed=9)
        coordinator = RecoveryCoordinator(svc)
        _sever_root(svc, injector)
        assert coordinator.recover_apex() is not None

        # Query an object from a leaf that does NOT track it: the only
        # route is up through the (promoted) apex.
        oid, home = next(iter(homes.items()))
        entry = next(
            sid
            for sid, server in svc.servers.items()
            if server.is_leaf and sid != home
        )
        reporter = Reporter()
        svc.network.join(reporter)
        future = reporter.park("q1")
        reporter.send(
            entry,
            m.PosQueryReq(request_id="q1", reply_to=reporter.address, object_id=oid),
        )
        res = svc.run(reporter.wait("q1", future))
        assert isinstance(res, m.PosQueryRes) and res.found

    def test_declines_while_the_root_still_answers(self):
        svc, _ = table2_service(object_count=20, seed=9)
        coordinator = RecoveryCoordinator(svc)
        assert coordinator.recover_apex() is None
        assert svc.hierarchy.root_id in svc.servers

    def test_relic_chatter_lands_outside_the_stale_horizon(self):
        """After promotion (+1 epoch) and two more adoptions the relic's
        pre-outage epoch stamp is beyond ``_EPOCH_REJECT_HORIZON``: a
        healed relic replaying old envelopes is rejected, not healed."""
        from repro.core.hierarchy import Hierarchy
        from repro.model import SightingRecord

        svc, homes = table2_service(object_count=20, seed=9)
        relic_epoch = svc.hierarchy.epoch
        injector = FaultInjector(svc.network, seed=9)
        coordinator = RecoveryCoordinator(svc)
        _sever_root(svc, injector)
        assert coordinator.recover_apex() is not None
        for _ in range(2):  # later rebalances age the topology further
            h = svc.hierarchy
            svc.adopt_hierarchy(
                Hierarchy(
                    {sid: h.config(sid) for sid in h.server_ids()},
                    epoch=h.epoch + 1,
                )
            )
        injector.heal_partition()

        oid, home = next(iter(homes.items()))
        leaf = svc.servers[home]
        reporter = Reporter()
        svc.network.join(reporter)
        reporter.send(
            home,
            m.UpdateBatchReq(
                request_id="relic",
                reply_to=reporter.address,
                sightings=(
                    SightingRecord(oid, 0.0, Point(1e6, 1e6), 10.0),
                ),
                epoch=relic_epoch,
            ),
        )
        svc.settle()
        assert leaf.stats.stale_epoch_rejected == 1


class TestRootPartitionScenario:
    def test_scenario_meets_the_bench_gates(self):
        payload = root_partition_scenario(objects=120, seed=0)
        assert payload["promoted"] if "promoted" in payload else True
        assert payload["lost_sightings"] == 0
        assert payload["duplicated_sightings"] == 0
        assert (
            payload["cross_queries_answered_before_heal"]
            == payload["cross_queries_before_heal"]
            > 0
        )
        assert payload["reconvergence_ticks"] is not None
        assert payload["reconvergence_ticks"] <= 5
        assert payload["faults_injected"] > 0
