"""Tests for the chaos layer's detection + recovery control plane.

Exercises :class:`RetryPolicy` backoff arithmetic, the probe-based
dead-leaf detector on the virtual clock, and both recovery strategies
(in-place WAL restart; merge re-homing with WAL replay into the
staging store).
"""

import random

import pytest

from repro.chaos import FaultInjector, RecoveryCoordinator, inject_crash
from repro.cluster import MigrationExecutor, SplitPlan
from repro.core import messages as m
from repro.core.service import RetryPolicy
from repro.errors import LocationServiceError
from repro.geo import Point, Rect
from repro.model import SightingRecord
from repro.runtime.base import Endpoint
from repro.sim.scenario import table2_service


class Reporter(Endpoint):
    """Minimal device stand-in for protocol-level assertions."""

    _counter = 0

    def __init__(self):
        type(self)._counter += 1
        super().__init__(f"chaos-test-reporter-{type(self)._counter}")

    async def send_update(self, agent: str, oid: str, pos: Point) -> m.UpdateRes:
        res = await self.request(
            agent,
            m.UpdateReq(
                request_id=self.next_request_id(),
                reply_to=self.address,
                sighting=SightingRecord(oid, 0.0, pos, 10.0),
            ),
        )
        assert isinstance(res, m.UpdateRes)
        return res


def split_sw_quadrant(svc):
    """Split root.0 in two so merge recovery has a real parent to fold
    into; returns (executor, report, child ids)."""
    children = (
        ("root.0/t.0", Rect(0.0, 0.0, 375.0, 750.0)),
        ("root.0/t.1", Rect(375.0, 0.0, 750.0, 750.0)),
    )
    plan = SplitPlan(
        leaf_id="root.0",
        axis="x",
        cuts=(375.0,),
        children=children,
        reason="test prep",
    )
    executor = MigrationExecutor(svc)
    report = executor.execute(plan)
    return executor, report, tuple(child for child, _ in children)


class TestRetryPolicy:
    def test_of_normalizes_plain_int(self):
        policy = RetryPolicy.of(5)
        assert policy.retries == 5
        assert policy.base_delay == 0.0

    def test_of_passes_policy_through(self):
        policy = RetryPolicy(retries=2, base_delay=0.5)
        assert RetryPolicy.of(policy) is policy

    def test_default_policy_never_waits(self):
        policy = RetryPolicy()
        assert [policy.delay_before(n) for n in range(4)] == [0.0] * 4

    def test_first_attempt_never_waits(self):
        policy = RetryPolicy(base_delay=1.0)
        assert policy.delay_before(0) == 0.0

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            retries=6, base_delay=0.1, backoff_factor=2.0, max_delay=0.5
        )
        delays = [policy.delay_before(n) for n in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_spreads_but_stays_bounded(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=1.0, jitter=0.25)
        rng = random.Random(7)
        delays = {policy.delay_before(1, rng=rng) for _ in range(50)}
        assert len(delays) > 1  # actually spread
        assert all(0.75 <= d <= 1.25 for d in delays)

    def test_jitter_needs_an_rng(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=1.0, jitter=0.25)
        assert policy.delay_before(1) == 1.0


class TestDetection:
    def test_probe_alive_on_live_server(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        assert coordinator.probe_alive("root.0")

    def test_probe_dead_after_crash(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        svc.crash_server("root.0")
        assert not coordinator.probe_alive("root.0")

    def test_confirm_dead_answers_quickly_for_live_server(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        dead, attempts, elapsed = coordinator.confirm_dead("root.1")
        assert not dead
        assert attempts == 1
        assert elapsed < coordinator.probe_timeout

    def test_confirm_dead_exhausts_backoff_schedule(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        svc.crash_server("root.0")
        dead, attempts, elapsed = coordinator.confirm_dead("root.0")
        assert dead
        policy = coordinator.probe_policy
        assert attempts == policy.retries + 1
        # Every probe burns its full timeout; backoff sleeps in between.
        backoff = sum(
            policy.delay_before(n) for n in range(1, policy.retries + 1)
        )
        expected = attempts * coordinator.probe_timeout + backoff
        assert elapsed == pytest.approx(expected)

    def test_recover_dead_leaf_declines_live_server(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        assert coordinator.recover_dead_leaf("root.2") is None
        assert coordinator.reports == []


class TestRestartRecovery:
    def test_wal_replay_restores_registrations(self):
        svc, homes = table2_service(object_count=120, seed=1)
        local = [oid for oid, home in homes.items() if home == "root.0"]
        assert local
        coordinator = RecoveryCoordinator(svc)
        inject_crash(svc, "root.0")

        report = coordinator.recover_dead_leaf("root.0", strategy="restart")
        assert report is not None
        assert report.strategy == "restart"
        assert report.new_home == "root.0"
        assert report.moved == 0
        assert report.replayed_records == len(local)
        assert report.detection_attempts == coordinator.probe_policy.retries + 1
        # Registrations are back; sightings are soft state, rebuilt by
        # the next position report.
        server = svc.servers["root.0"]
        for oid in local:
            assert oid in server.store.visitors
        reporter = Reporter()
        svc.network.join(reporter)
        pos = server.config.area.center
        svc.run(reporter.send_update("root.0", local[0], pos))
        descriptor = svc.pos_query(local[0], entry_server="root.3")
        assert descriptor is not None
        assert descriptor.pos == pos
        svc.check_consistency()

    def test_restart_rejoins_at_current_epoch(self):
        svc, _ = table2_service(object_count=60, seed=2)
        coordinator = RecoveryCoordinator(svc)
        svc.crash_server("root.1")
        # The topology moves on while root.1 is down.
        split_sw_quadrant(svc)
        coordinator.recover_leaf("root.1", strategy="restart")
        assert svc.servers["root.1"].topology_epoch == svc.hierarchy.epoch

    def test_recover_leaf_refuses_live_server(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        with pytest.raises(LocationServiceError, match="not down"):
            coordinator.recover_leaf("root.0", strategy="restart")

    def test_recover_leaf_refuses_unknown_server(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        with pytest.raises(LocationServiceError, match="not a live leaf"):
            coordinator.recover_leaf("nope", strategy="restart")

    def test_unknown_strategy_rejected(self):
        svc, _ = table2_service(object_count=20, seed=0)
        coordinator = RecoveryCoordinator(svc)
        svc.crash_server("root.0")
        with pytest.raises(LocationServiceError, match="unknown recovery strategy"):
            coordinator.recover_leaf("root.0", strategy="pray")


class TestMergeRecovery:
    def test_dead_child_folds_into_parent_via_wal(self):
        svc, homes = table2_service(object_count=200, seed=3)
        executor, split_report, (victim, sibling) = split_sw_quadrant(svc)
        homes.update(split_report.new_homes)
        dead_oids = [oid for oid, home in homes.items() if home == victim]
        live_oids = [oid for oid, home in homes.items() if home == sibling]
        assert dead_oids and live_oids

        coordinator = RecoveryCoordinator(svc, executor=executor)
        inject_crash(svc, victim)
        report = coordinator.recover_dead_leaf(victim, strategy="merge")

        assert report.strategy == "merge"
        assert report.new_home == "root.0"
        assert report.replayed_records == len(dead_oids)
        parent = svc.servers["root.0"]
        assert parent.is_leaf
        # Every object — dead child's included — has exactly one agent.
        for oid in dead_oids + live_oids:
            assert oid in parent.store.visitors
            assert report.new_homes[oid] == "root.0"
        # The dead alias is garbage-collected, not left to dead-letter.
        assert victim not in svc.servers
        assert victim not in svc.retired_servers
        svc.hierarchy.validate()
        svc.check_consistency()

    def test_sightings_rebuild_from_reports_after_merge(self):
        svc, homes = table2_service(object_count=200, seed=4)
        executor, split_report, (victim, _) = split_sw_quadrant(svc)
        homes.update(split_report.new_homes)
        dead_oids = [oid for oid, home in homes.items() if home == victim]

        coordinator = RecoveryCoordinator(svc, executor=executor)
        inject_crash(svc, victim)
        coordinator.recover_dead_leaf(victim, strategy="merge")

        reporter = Reporter()
        svc.network.join(reporter)
        pos = svc.servers["root.0"].config.area.center
        for oid in dead_oids:
            res = svc.run(reporter.send_update("root.0", oid, pos))
            assert res.ok
        assert svc.total_tracked() == len(homes)
        svc.check_consistency()

    def test_merge_refuses_interior_sibling(self):
        svc, _ = table2_service(object_count=60, seed=5)
        split_sw_quadrant(svc)  # root.0 is interior now
        coordinator = RecoveryCoordinator(svc)
        svc.crash_server("root.1")
        with pytest.raises(LocationServiceError, match="not all leaves"):
            coordinator.recover_leaf("root.1", strategy="merge")

    def test_abort_in_flight_discards_windows_touching_the_dead(self):
        svc, homes = table2_service(object_count=150, seed=6)
        children = (
            ("root.0/t.0", Rect(0.0, 0.0, 375.0, 750.0)),
            ("root.0/t.1", Rect(375.0, 0.0, 750.0, 750.0)),
        )
        plan = SplitPlan(
            leaf_id="root.0",
            axis="x",
            cuts=(375.0,),
            children=children,
            reason="test prep",
        )
        executor = MigrationExecutor(svc)
        migration = executor.begin(plan)
        executor.step(migration, max_objects=10)  # crash mid-copy
        coordinator = RecoveryCoordinator(svc, executor=executor)
        epoch_before = svc.hierarchy.epoch

        inject_crash(svc, "root.0")
        report = coordinator.recover_dead_leaf("root.0", strategy="restart")

        assert report is not None
        assert list(executor.in_flight) == []
        # Pre-cutover discard is exact: the epoch never moved and the
        # same plan re-runs cleanly afterwards once the next position
        # reports have rebuilt the (soft-state) sightings the crash wiped.
        assert svc.hierarchy.epoch == epoch_before
        reporter = Reporter()
        svc.network.join(reporter)
        rng = random.Random(6)
        local = [oid for oid, home in homes.items() if home == "root.0"]
        for oid in local:
            pos = Point(rng.uniform(0.0, 750.0), rng.uniform(0.0, 750.0))
            svc.run(reporter.send_update("root.0", oid, pos))
        rerun = executor.execute(plan)
        assert rerun.moved == len(local)
        svc.hierarchy.validate()
        svc.check_consistency()

    def test_faults_injected_accounting_via_injector(self):
        svc, _ = table2_service(object_count=20, seed=0)
        injector = FaultInjector(svc.network)
        inject_crash(svc, "root.0")
        injector.note_fault()
        assert svc.network.stats.faults_injected == 2
