"""The UDP byzantine lane at test scale: real datagrams, real damage.

One socket per server plus one for the driver; the injected corruption
lands on encoded frame *bytes*, so what is under test here — unlike the
in-process lanes — is the wire layer itself: CRC32 rejection and
:class:`~repro.net.wire.FrameDecoder` magic-resync, with the protocol's
retry lane turning every caught frame into a re-send instead of a loss.
"""

import pytest

from repro.sim.byzantine import run_udp_byzantine_lane

pytestmark = pytest.mark.slow


class TestUdpByzantineLane:
    def test_frame_damage_is_caught_and_nothing_is_lost(self):
        lane = run_udp_byzantine_lane(objects=40, ticks=4, seed=0)
        assert lane["transport"] == "udp"
        assert lane["registered"] == lane["found"] == 40
        assert lane["corrupted_accepted"] == 0
        assert lane["lost_sightings"] == 0
        assert lane["duplicated_sightings"] == 0
        assert lane["faults_injected"] > 0
        # Byte-layer damage must be caught at the frame layer (CRC /
        # resync), optionally more at the message layers above it.
        caught = (
            lane["frames_corrupted"]
            + lane["messages_quarantined"]
            + lane["stale_epoch_rejected"]
        )
        assert caught > 0
