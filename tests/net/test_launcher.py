"""Multi-process cluster launcher: every ``LocationServer`` in its own
OS process, driven over real sockets from this (driver) process."""

import asyncio

import pytest

from repro.core import messages as m
from repro.core.hierarchy import Hierarchy, build_table2_hierarchy
from repro.geo import Point
from repro.model import SightingRecord
from repro.net.bootstrap import ClusterLauncher, bfs_order
from repro.runtime.base import Endpoint

pytestmark = pytest.mark.slow


def run(coro):
    return asyncio.run(coro)


class TestBfsOrder:
    def test_root_first_children_after(self):
        h = build_table2_hierarchy()
        order = bfs_order(h)
        assert order[0] == h.root_id
        assert sorted(order) == sorted(h.server_ids())


class TestUdpCluster:
    def test_register_query_adopt_shutdown(self):
        async def scenario():
            h = build_table2_hierarchy(1500.0)
            launcher = ClusterLauncher(h, transport="udp", seed=0)
            await launcher.start()
            try:
                client = launcher.join(Endpoint("test-client"))

                # Register at the entry leaf owning the position.
                leaf = h.leaf_for_point(Point(100.0, 100.0))
                res = await launcher.request(
                    leaf,
                    lambda rid: m.RegisterReq(
                        request_id=rid,
                        reply_to=launcher.control.address,
                        sighting=SightingRecord("truck", 0.0, Point(100.0, 100.0), 10.0),
                        des_acc=25.0,
                        min_acc=100.0,
                        registrar=launcher.control.address,
                    ),
                    timeout=2.0,
                    retries=4,
                )
                assert res.ok and res.agent == leaf

                # Cross-process query: enter at a *different* leaf, the
                # request routes through the root process and back.
                other = next(
                    sid for sid in h.leaf_ids() if sid != leaf
                )
                qres = await client.request(
                    other,
                    m.PosQueryReq(
                        request_id=client.next_request_id(),
                        reply_to=client.address,
                        object_id="truck",
                    ),
                    timeout=5.0,
                )
                assert qres.found
                assert qres.descriptor.pos == Point(100.0, 100.0)

                # Control plane: per-node stats and the leaf tracked sum.
                stats = await launcher.node_stats(leaf)
                assert stats.tracked == 1
                assert stats.epoch == h.epoch
                assert await launcher.total_tracked() == 1

                # Epoch bump adoption across all processes.
                bumped = Hierarchy(dict(h.configs), epoch=h.epoch + 1)
                adopted = await launcher.adopt_hierarchy(bumped)
                assert set(adopted) == set(h.server_ids())
                assert all(epoch == h.epoch + 1 for epoch in adopted.values())
            finally:
                await launcher.stop()
            # Ordered shutdown leaves no straggler node processes.
            assert all(
                not process.is_alive()
                for process in launcher._processes.values()
            )

        run(scenario())


class TestTcpCluster:
    def test_register_and_query_over_tcp(self):
        async def scenario():
            h = build_table2_hierarchy(1500.0)
            launcher = ClusterLauncher(h, transport="tcp", seed=0)
            await launcher.start()
            try:
                leaf = h.leaf_for_point(Point(700.0, 100.0))
                res = await launcher.request(
                    leaf,
                    lambda rid: m.RegisterReq(
                        request_id=rid,
                        reply_to=launcher.control.address,
                        sighting=SightingRecord("bus", 0.0, Point(700.0, 100.0), 10.0),
                        des_acc=25.0,
                        min_acc=100.0,
                        registrar=launcher.control.address,
                    ),
                    timeout=2.0,
                    retries=4,
                )
                assert res.ok
                assert await launcher.total_tracked() == 1
            finally:
                await launcher.stop()

        run(scenario())


class TestLauncherValidation:
    def test_rejects_malformed_server_ids(self):
        from repro.core.hierarchy import build_grid_hierarchy
        from repro.errors import AddressError
        from repro.geo import Rect

        bad = build_grid_hierarchy(Rect(0, 0, 100, 100), [], root_id="bad id")
        with pytest.raises(AddressError):
            ClusterLauncher(bad)

    def test_accepts_split_derived_ids(self):
        # Path-like ids from splits (root.0/c.1) must stay launchable.
        from repro.core.hierarchy import build_grid_hierarchy
        from repro.geo import Rect

        h = build_grid_hierarchy(Rect(0, 0, 100, 100), [], root_id="root.0/c.1")
        ClusterLauncher(h)  # no raise
