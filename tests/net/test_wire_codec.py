"""Wire codec: exact round-trips for the whole message catalog.

The property test does not enumerate message types by hand: it walks
``Message.__subclasses__`` (recursively, the way the codec's own
auto-registration does), synthesises instances from each dataclass's
resolved type hints, and requires ``decode(encode(x)) == x`` field for
field — so a message added to the catalog tomorrow is covered the day
it exists, or this test fails telling the author the codec cannot
carry it.
"""

import dataclasses
import random
import sys
import types
import typing

import pytest

from repro.core import messages as m
from repro.errors import WireError
from repro.geo import Circle, Point, Polygon, Rect
from repro.geo.point import Vector
from repro.model import (
    LocationDescriptor,
    NearestNeighborResult,
    RegistrationInfo,
    SightingRecord,
)
from repro.net import wire
from repro.net.wire import (
    FrameDecoder,
    decode_frame,
    decode_hierarchy,
    encode_frame,
    encode_hierarchy,
    registered_types,
)
from repro.runtime.base import Message

# ---------------------------------------------------------------------------
# Instance synthesis from type hints
# ---------------------------------------------------------------------------

_POINT = Point(12.5, -3.25)
_SAMPLES = {
    str: lambda rng: f"s{rng.randrange(1000)}",
    int: lambda rng: rng.randrange(-5, 50),
    float: lambda rng: rng.choice([0.0, 1.5, -2.25, 1e9, float("inf")]),
    bool: lambda rng: rng.random() < 0.5,
    Point: lambda rng: Point(rng.uniform(-10, 10), rng.uniform(-10, 10)),
    Vector: lambda rng: Vector(rng.uniform(-1, 1), rng.uniform(-1, 1)),
    Rect: lambda rng: Rect(0.0, 0.0, 10.0 + rng.random(), 20.0),
    Circle: lambda rng: Circle(_POINT, 5.0 + rng.random()),
    Polygon: lambda rng: Polygon(
        [Point(0, 0), Point(10 + rng.random(), 0), Point(5, 8)]
    ),
    # Validated records: synthesize values that satisfy their invariants
    # (acc >= 0, min_acc no tighter than des_acc).
    SightingRecord: lambda rng: SightingRecord(
        f"obj{rng.randrange(100)}", rng.uniform(0, 100), _POINT, rng.uniform(0, 20)
    ),
    RegistrationInfo: lambda rng: RegistrationInfo(
        f"reg{rng.randrange(100)}", 25.0, rng.choice([100.0, float("inf")])
    ),
    LocationDescriptor: lambda rng: LocationDescriptor(_POINT, rng.uniform(0, 50)),
}


def _register_validated_samples():
    from repro.core.events import AreaOccupancy, Proximity
    from repro.model import RangeQuery

    _SAMPLES[RangeQuery] = lambda rng: RangeQuery(
        Rect(0, 0, 100, 100), rng.choice([50.0, float("inf")]), 0.5
    )
    _SAMPLES[AreaOccupancy] = lambda rng: AreaOccupancy(
        Rect(0, 0, 40, 40), threshold=1 + rng.randrange(3), req_overlap=0.25
    )
    _SAMPLES[Proximity] = lambda rng: Proximity(
        "obj-a", f"obj-b{rng.randrange(10)}", rng.uniform(0, 30)
    )


_register_validated_samples()


def _synthesize(hint, rng, depth=0):
    """A value satisfying ``hint``, built recursively."""
    origin = typing.get_origin(hint)
    if origin in (typing.Union, types.UnionType):
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        # Exercise the None branch of optionals sometimes.
        if len(args) < len(typing.get_args(hint)) and rng.random() < 0.3:
            return None
        return _synthesize(rng.choice(args), rng, depth)
    if origin is tuple or hint is tuple:
        args = typing.get_args(hint)
        if not args:  # bare ``tuple`` (EventNotification.matched: object ids)
            return tuple(f"oid{i}" for i in range(rng.randrange(3)))
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(
                _synthesize(args[0], rng, depth + 1)
                for _ in range(rng.randrange(3) if depth else rng.randrange(1, 4))
            )
        return tuple(_synthesize(a, rng, depth + 1) for a in args)
    if hint in _SAMPLES:
        return _SAMPLES[hint](rng)
    if dataclasses.is_dataclass(hint):
        return _build(hint, rng, depth + 1)
    raise AssertionError(f"no synthesis rule for type hint {hint!r}")


def _build(cls, rng, depth=0):
    hints = typing.get_type_hints(cls)
    return cls(
        *[_synthesize(hints[f.name], rng, depth) for f in dataclasses.fields(cls)]
    )


def _assert_equal(a, b, context):
    assert type(a) is type(b), (context, a, b)
    if isinstance(a, Polygon):
        assert a.points == b.points, context
    elif dataclasses.is_dataclass(a):
        for f in dataclasses.fields(a):
            _assert_equal(
                getattr(a, f.name), getattr(b, f.name), f"{context}.{f.name}"
            )
    elif isinstance(a, tuple):
        assert len(a) == len(b), context
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_equal(x, y, f"{context}[{i}]")
    else:
        assert a == b, (context, a, b)


def _live_message_types():
    """Every catalog Message subclass via ``__subclasses__`` — the
    satellite's auto-discovery contract — filtered to each module's
    live binding (``@dataclass(slots=True)`` leaves dead pre-slots
    classes behind) and to ``repro.*`` modules (a full-suite run also
    has other test files' throwaway message classes in memory)."""

    def walk(cls):
        for sub in cls.__subclasses__():
            yield sub
            yield from walk(sub)

    seen = {}
    for sub in walk(Message):
        if not sub.__module__.startswith("repro."):
            continue
        module = sys.modules.get(sub.__module__)
        if module is not None and getattr(module, sub.__name__, None) is sub:
            seen[sub.__name__] = sub
    return sorted(seen.values(), key=lambda c: c.__name__)


class TestCatalogRoundTrip:
    def test_every_message_subclass_round_trips(self):
        rng = random.Random(7)
        catalog = _live_message_types()
        # The full protocol catalog plus the launcher control plane.
        assert len(catalog) > 50
        for cls in catalog:
            for _ in range(5):
                original = _build(cls, rng)
                src, dst, decoded = decode_frame(
                    encode_frame("a", "b", [original])
                )
                assert (src, dst) == ("a", "b")
                assert len(decoded) == 1
                _assert_equal(original, decoded[0], cls.__name__)

    def test_registry_covers_the_live_catalog(self):
        by_name = registered_types()
        for cls in _live_message_types():
            assert by_name.get(cls.__name__) is cls

    def test_nested_batch_round_trips_exactly(self):
        item = m.HandoverBatchItem(
            sighting=SightingRecord("t1", 4.0, _POINT, 10.0),
            reg_info=RegistrationInfo("client-7", 25.0, 100.0),
            previous_offered=50.0,
        )
        req = m.HandoverBatchReq(
            request_id="r1", reply_to="leaf-a", sender="leaf-b", items=(item, item)
        )
        _, _, (decoded,) = decode_frame(encode_frame("x", "y", [req]))
        assert decoded == req
        assert decoded.sender == "leaf-b"
        assert decoded.items[0].reg_info.registrar == "client-7"

    def test_infinite_accuracy_round_trips(self):
        req = m.PosQueryReq(
            request_id="r", reply_to="c", object_id="o", req_acc=float("inf")
        )
        _, _, (decoded,) = decode_frame(encode_frame("a", "b", [req]))
        assert decoded.req_acc == float("inf")

    def test_tuples_stay_tuples(self):
        res = m.UpdateBatchRes(
            request_id="r",
            outcomes=(m.UpdateOutcome("o1", True, agent="root.2"),),
        )
        _, _, (decoded,) = decode_frame(encode_frame("a", "b", [res]))
        assert isinstance(decoded.outcomes, tuple)
        assert isinstance(decoded.outcomes[0], m.UpdateOutcome)


class TestFraming:
    def test_multi_message_frame_preserves_order(self):
        pings = [
            m.PingReq(request_id=f"p{i}", reply_to="c") for i in range(20)
        ]
        _, _, decoded = decode_frame(encode_frame("a", "b", pings))
        assert decoded == pings

    def test_stream_reassembles_byte_by_byte(self):
        frame = encode_frame("a", "b", [m.PingReq(request_id="p", reply_to="c")])
        other = encode_frame("c", "d", [m.PingRes(request_id="q")])
        decoder = FrameDecoder()
        collected = []
        for chunk in (frame + other):
            collected.extend(decoder.feed(bytes([chunk])))
        assert len(collected) == 2
        assert collected[0][0:2] == ("a", "b")
        assert collected[1][0:2] == ("c", "d")
        assert decoder.pending_bytes == 0

    def test_bad_magic_resyncs_to_next_frame(self):
        good = encode_frame("a", "b", [m.PingReq(request_id="p", reply_to="c")])
        decoder = FrameDecoder()
        frames = decoder.feed(b"XXjunkjunk" + good)
        assert len(frames) == 1
        assert frames[0][:2] == ("a", "b")
        assert decoder.corrupted_frames >= 1
        assert decoder.pending_bytes == 0

    def test_bad_magic_raises_in_strict_decode(self):
        with pytest.raises(WireError):
            decode_frame(b"XX\x01\x00\x00\x00\x02{}")

    def test_newer_version_byte_still_decodes(self):
        # Forward compatibility: a peer one version ahead keeps the v2
        # layout; its frames must decode, not poison the stream.
        frame = bytearray(
            encode_frame("a", "b", [m.PingReq(request_id="p", reply_to="c")])
        )
        frame[2] = wire.WIRE_VERSION + 1
        decoder = FrameDecoder()
        frames = decoder.feed(bytes(frame))
        assert len(frames) == 1
        assert decoder.corrupted_frames == 0

    def test_zero_version_byte_is_corruption(self):
        good = encode_frame("a", "b", [m.PingReq(request_id="p", reply_to="c")])
        mangled = bytearray(good)
        mangled[2] = 0
        decoder = FrameDecoder()
        frames = decoder.feed(bytes(mangled) + good)
        assert len(frames) == 1
        assert decoder.corrupted_frames >= 1

    def test_checksum_mismatch_resyncs(self):
        good = encode_frame("a", "b", [m.PingReq(request_id="p", reply_to="c")])
        mangled = bytearray(good)
        mangled[-1] ^= 0xFF  # flip one payload bit: CRC must catch it
        decoder = FrameDecoder()
        frames = decoder.feed(bytes(mangled) + good)
        assert len(frames) == 1
        assert frames[0][:2] == ("a", "b")
        assert decoder.corrupted_frames >= 1

    def test_v1_legacy_frame_still_decodes(self):
        body = bytes(
            encode_frame("a", "b", [m.PingReq(request_id="p", reply_to="c")])
        )[wire.HEADER_SIZE :]
        v1 = wire.MAGIC + bytes([1]) + len(body).to_bytes(4, "big") + body
        decoder = FrameDecoder()
        frames = decoder.feed(v1)
        assert len(frames) == 1
        assert frames[0][:2] == ("a", "b")
        assert decoder.corrupted_frames == 0

    def test_unknown_message_type_skipped_not_fatal(self):
        # An unknown type from a newer peer drops that message only; the
        # rest of the frame is delivered and counted as skipped.
        import json as _json
        import zlib as _zlib

        body = _json.dumps(
            {
                "s": "a",
                "d": "b",
                "m": [
                    {"t": "NoSuchFutureMessage", "f": [1, 2, 3]},
                    wire.encode(m.PingReq(request_id="p", reply_to="c")),
                ],
            },
            separators=(",", ":"),
        ).encode()
        frame = (
            wire.MAGIC
            + bytes([wire.WIRE_VERSION])
            + len(body).to_bytes(4, "big")
            + _zlib.crc32(body).to_bytes(4, "big")
            + body
        )
        decoder = FrameDecoder()
        frames = decoder.feed(frame)
        assert len(frames) == 1
        src, dst, messages = frames[0]
        assert messages == [m.PingReq(request_id="p", reply_to="c")]
        assert decoder.skipped_messages == 1
        assert decoder.corrupted_frames == 0

    def test_unknown_trailing_fields_ignored(self):
        # Schema evolution: a newer peer appending fields to a known
        # type must still round-trip into our (shorter) constructor.
        payload = wire.encode(m.PingReq(request_id="p", reply_to="c"))
        payload["f"].append("future-field")
        decoded = wire.decode(payload)
        assert decoded == m.PingReq(request_id="p", reply_to="c")

    def test_flush_rescues_frames_behind_corrupt_length(self):
        # A mutated length prefix can swallow a healthy trailing frame;
        # the datagram-boundary flush must dig it back out.
        good = encode_frame("a", "b", [m.PingReq(request_id="p", reply_to="c")])
        mangled = bytearray(good)
        mangled[4] = 0xFF  # length prefix now points far past the end
        decoder = FrameDecoder()
        frames = decoder.feed(bytes(mangled) + good)
        frames.extend(decoder.flush())
        assert len(frames) == 1
        assert frames[0][:2] == ("a", "b")
        assert decoder.corrupted_frames >= 1
        assert decoder.pending_bytes == 0

    def test_unknown_type_raises(self):
        with pytest.raises(WireError, match="unknown wire type"):
            wire.decode({"t": "NoSuchMessage", "f": []})

    def test_register_name_collision_raises(self):
        class PingReq:  # same wire name as the real one, different class
            pass

        with pytest.raises(WireError, match="already registered"):
            wire.register_type(PingReq)

    def test_sweep_skips_colliding_out_of_tree_subclasses(self):
        # Two unrelated test modules may both define e.g. ``Pong``; the
        # opportunistic catalog sweep must not blow up the whole codec
        # over it — first one keeps the name, the latecomer is simply
        # not wire encodable.
        import dataclasses

        first = dataclasses.dataclass(frozen=True, slots=True)(
            type("SweepCollider", (Message,), {"__annotations__": {}})
        )
        second = dataclasses.dataclass(frozen=True, slots=True)(
            type("SweepCollider", (Message,), {"__annotations__": {}})
        )
        # Bind both as module attributes so the liveness filter keeps them.
        import sys

        mod = sys.modules[__name__]
        try:
            mod.SweepCollider = first
            wire.registered_types()
            assert wire.registered_types()["SweepCollider"] is first
            mod.SweepCollider = second
            registry = wire.registered_types()  # no raise
            assert registry["SweepCollider"] is first
        finally:
            del mod.SweepCollider


class TestHierarchyWire:
    def test_hierarchy_round_trips_with_epoch(self):
        from repro.core.hierarchy import build_quad_hierarchy

        h = build_quad_hierarchy(Rect(0, 0, 1000, 1000), depth=2)
        h.epoch = 5
        decoded = decode_hierarchy(encode_hierarchy(h))
        assert decoded.epoch == 5
        assert decoded.server_ids() == h.server_ids()
        for sid in h.server_ids():
            assert decoded.config(sid) == h.config(sid)
