"""UDP and TCP socket transports: the ``Context`` contract over real
loopback sockets, with ``AsyncioNetwork``-parity bookkeeping and the
chaos layer's ``FaultInjector`` installed unchanged."""

import asyncio
from dataclasses import dataclass

import pytest

from repro.chaos import FaultInjector, LinkFaults
from repro.core import messages as m
from repro.errors import TransportError
from repro.net.address import AddressBook
from repro.net.tcp import TcpTransport
from repro.net.udp import MAX_DATAGRAM_PAYLOAD, UdpTransport
from repro.runtime.base import Endpoint, Message, Response

TRANSPORTS = [UdpTransport, TcpTransport]


@dataclass(frozen=True, slots=True)
class XportEchoReq(Message):
    request_id: str
    reply_to: str
    payload: str


@dataclass(frozen=True, slots=True)
class XportEchoRes(Response):
    request_id: str
    payload: str


class Echo(Endpoint):
    def __init__(self, address: str = "echo") -> None:
        super().__init__(address)
        self.received: list[Message] = []
        self.on(XportEchoReq, self._on_echo)

    async def _on_echo(self, req: XportEchoReq) -> None:
        self.received.append(req)
        self.send(req.reply_to, XportEchoRes(req.request_id, req.payload))


class Collector(Endpoint):
    def __init__(self, address: str = "sink") -> None:
        super().__init__(address)
        self.received: list[Message] = []
        self.on(XportEchoReq, self._collect)

    async def _collect(self, msg: Message) -> None:
        self.received.append(msg)


async def start_pair(cls, **kwargs):
    """Two transports (caller-side and server-side) sharing one book."""
    book = AddressBook()
    left = cls(book=book, **kwargs)
    right = cls(book=book)
    await left.start()
    host, port = await right.start()
    book.bind("echo", host, port)
    book.bind("sink", host, port)
    book.bind("caller", *(left.host, left.port))
    return left, right


async def stop_all(*transports):
    for transport in transports:
        await transport.stop()


async def settle(seconds: float = 0.15):
    await asyncio.sleep(seconds)


@pytest.mark.parametrize("cls", TRANSPORTS, ids=lambda c: c.kind)
class TestLoopback:
    def test_request_response_over_socket(self, cls):
        async def scenario():
            left, right = await start_pair(cls)
            try:
                right.join(Echo())
                caller = left.join(Endpoint("caller"))
                res = await caller.request(
                    "echo",
                    XportEchoReq(caller.next_request_id(), "caller", "hi"),
                    timeout=5.0,
                )
                assert isinstance(res, XportEchoRes)
                assert res.payload == "hi"
                assert left.stats.messages_sent == 1
                assert right.stats.messages_delivered == 1
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())

    def test_send_many_coalesces_to_one_wire_write(self, cls):
        async def scenario():
            left, right = await start_pair(cls)
            writes = []
            real = left._send_bytes
            left._send_bytes = lambda data, loc: (writes.append(len(data)), real(data, loc))
            try:
                sink = right.join(Collector())
                caller = left.join(Endpoint("caller"))
                batch = [
                    XportEchoReq(f"r{i}", "caller", f"p{i}") for i in range(5)
                ]
                caller.send_many("sink", batch)
                await settle()
                assert len(writes) == 1  # one frame, one write
                assert [r.request_id for r in sink.received] == [
                    f"r{i}" for i in range(5)
                ]
                assert left.stats.messages_sent == 5
                assert right.stats.messages_delivered == 5
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())

    def test_unresolvable_destination_is_a_dead_letter(self, cls):
        async def scenario():
            left, right = await start_pair(cls)
            try:
                caller = left.join(Endpoint("caller"))
                caller.send("nowhere", XportEchoReq("r", "caller", "x"))
                assert left.stats.dead_letters == 1
                assert left.stats.messages_sent == 1
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())

    def test_down_destination_drops_locally(self, cls):
        async def scenario():
            left, right = await start_pair(cls)
            try:
                sink = right.join(Collector())
                caller = left.join(Endpoint("caller"))
                right.crash("sink")
                caller.send("sink", XportEchoReq("r", "caller", "x"))
                await settle()
                assert sink.received == []
                assert right.stats.messages_dropped == 1
                right.restore("sink")
                caller.send("sink", XportEchoReq("r2", "caller", "y"))
                await settle()
                assert [r.request_id for r in sink.received] == ["r2"]
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())

    @pytest.mark.slow
    def test_timeout_and_retry_recover_from_drops(self, cls):
        """The RetryPolicy story end-to-end: a lossy sender-side link
        still converges because unanswered requests are re-sent."""

        async def scenario():
            left, right = await start_pair(cls, drop_rate=0.5, seed=3)
            try:
                right.join(Echo())
                caller = left.join(Endpoint("caller"))
                answered = 0
                for i in range(10):
                    for _attempt in range(8):
                        try:
                            res = await caller.request(
                                "echo",
                                XportEchoReq(
                                    caller.next_request_id(), "caller", f"p{i}"
                                ),
                                timeout=0.3,
                            )
                            assert res.payload == f"p{i}"
                            answered += 1
                            break
                        except TransportError:
                            continue
                    else:
                        raise AssertionError(f"request {i} never answered")
                assert answered == 10
                assert left.stats.messages_dropped > 0
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())


@pytest.mark.parametrize("cls", TRANSPORTS, ids=lambda c: c.kind)
class TestFaultInjectorOnSockets:
    """The PR-6 chaos hook runs unchanged on the socket transports."""

    def test_severed_link_drops_and_counts(self, cls):
        async def scenario():
            left, right = await start_pair(cls)
            injector = FaultInjector(left, seed=0)
            try:
                sink = right.join(Collector())
                caller = left.join(Endpoint("caller"))
                injector.sever("caller", "sink")
                caller.send("sink", XportEchoReq("r", "caller", "x"))
                await settle()
                assert sink.received == []
                assert left.stats.faults_injected == 1
                assert left.stats.messages_dropped == 1
                injector.heal("caller", "sink")
                caller.send("sink", XportEchoReq("r2", "caller", "y"))
                await settle()
                assert [r.request_id for r in sink.received] == ["r2"]
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())

    def test_duplicates_are_manufactured_not_sent(self, cls):
        async def scenario():
            left, right = await start_pair(cls)
            injector = FaultInjector(left, seed=0)
            try:
                sink = right.join(Collector())
                caller = left.join(Endpoint("caller"))
                injector.set_link("caller", "sink", LinkFaults(duplicate_rate=1.0))
                caller.send("sink", XportEchoReq("r", "caller", "x"))
                await settle()
                assert len(sink.received) == 2
                assert left.stats.messages_sent == 1
                assert left.stats.messages_duplicated == 1
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())

    @pytest.mark.slow
    def test_injected_loss_recovered_by_retries(self, cls):
        """FaultInjector loss + protocol-style retries: zero lost."""

        async def scenario():
            left, right = await start_pair(cls)
            injector = FaultInjector(left, seed=11)
            try:
                right.join(Echo())
                caller = left.join(Endpoint("caller"))
                injector.set_link("caller", "echo", LinkFaults(drop_rate=0.5))
                for i in range(6):
                    for _attempt in range(10):
                        try:
                            await caller.request(
                                "echo",
                                XportEchoReq(
                                    caller.next_request_id(), "caller", f"p{i}"
                                ),
                                timeout=0.3,
                            )
                            break
                        except TransportError:
                            continue
                    else:
                        raise AssertionError(f"request {i} never answered")
                assert left.stats.faults_injected > 0
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())


class TestUdpFragmentation:
    def test_oversized_batch_survives_fragmentation(self):
        async def scenario():
            left, right = await start_pair(UdpTransport)
            try:
                sink = right.join(Collector())
                caller = left.join(Endpoint("caller"))
                big = "x" * 600
                batch = [
                    XportEchoReq(f"r{i}", "caller", big) for i in range(200)
                ]
                caller.send_many("sink", batch)  # ~125 KB frame
                await settle(0.4)
                assert len(sink.received) == 200
                assert sink.received[0].payload == big
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())

    def test_single_datagram_stays_unfragmented(self):
        async def scenario():
            left, right = await start_pair(UdpTransport)
            sent = []
            real_sendto = None

            try:
                sink = right.join(Collector())
                caller = left.join(Endpoint("caller"))
                real_sendto = left._sock.sendto
                left._sock.sendto = lambda data, addr: (
                    sent.append(len(data)),
                    real_sendto(data, addr),
                )
                caller.send("sink", XportEchoReq("r", "caller", "small"))
                await settle()
                assert len(sent) == 1
                assert sent[0] <= MAX_DATAGRAM_PAYLOAD
                assert len(sink.received) == 1
            finally:
                await stop_all(left, right)

        asyncio.run(scenario())
