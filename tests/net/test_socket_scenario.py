"""The acceptance path: elastic-scenario workloads run unmodified over
real sockets, and the same driver runs them on the in-process asyncio
runtime for the throughput comparison."""

import pytest

from repro.net.scenario import (
    run_workload_inprocess,
    run_workload_multiprocess,
)
from repro.sim.elastic import commuter_rush_workload, festival_surge_workload

pytestmark = pytest.mark.slow


class TestInProcessLane:
    def test_festival_surge_zero_lost(self):
        payload = run_workload_inprocess(
            festival_surge_workload(objects=60, ticks=3, seed=0), seed=0
        )
        assert payload["lost_sightings"] == 0
        assert payload["registered"] == 60
        assert payload["reports"] > 0
        assert payload["transport"] == "in-process"


class TestMultiProcessLane:
    def test_commuter_rush_over_udp_cluster(self):
        payload = run_workload_multiprocess(
            commuter_rush_workload(objects=60, ticks=3, seed=0),
            transport="udp",
            seed=0,
        )
        assert payload["lost_sightings"] == 0
        assert payload["tracked_total"] == 60
        assert payload["processes"] == 5
        assert payload["driver_messages_sent"] > 0

    def test_udp_loss_recovered_by_retries(self):
        payload = run_workload_multiprocess(
            commuter_rush_workload(objects=40, ticks=2, seed=1),
            transport="udp",
            drop_rate=0.02,
            retries=12,
            timeout=0.8,
            seed=1,
        )
        assert payload["lost_sightings"] == 0
        assert payload["tracked_total"] == 40
        assert payload["driver_messages_dropped"] > 0
