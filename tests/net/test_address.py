"""Endpoint-address validation and host:port parsing (one helper for
the launcher, the transports, and the service's forwarding aliases)."""

import pytest

from repro.errors import AddressError, TransportError
from repro.net.address import (
    AddressBook,
    format_hostport,
    is_valid_address,
    parse_hostport,
    validate_address,
)


class TestValidateAddress:
    @pytest.mark.parametrize(
        "address",
        ["root", "root.0", "root.0/c.1", "driver", "svc-batch-reporter", "a#7"],
    )
    def test_accepts_real_addresses(self, address):
        assert validate_address(address) == address
        assert is_valid_address(address)

    @pytest.mark.parametrize(
        "address",
        ["", "has space", "has\ttab", "new\nline", "colon:443", "back\\slash",
         "ctrl\x00char", "\x07bell", "x" * 300, None, 42],
    )
    def test_rejects_malformed(self, address):
        with pytest.raises(AddressError):
            validate_address(address)
        assert not is_valid_address(address)

    def test_error_names_the_role(self):
        with pytest.raises(AddressError, match="forwarding successor"):
            validate_address("bad addr", what="forwarding successor")

    def test_address_error_is_a_transport_error(self):
        # Callers that guard protocol sends with ``except TransportError``
        # must also catch malformed-address failures.
        assert issubclass(AddressError, TransportError)


class TestHostport:
    def test_round_trip(self):
        assert parse_hostport(format_hostport("127.0.0.1", 9000)) == ("127.0.0.1", 9000)

    @pytest.mark.parametrize(
        "text", ["nocolon", "host:", ":123", "host:notaport", "host:0",
                 "host:70000", "host:-1", ""],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            parse_hostport(text)


class TestAddressBook:
    def test_bind_resolve(self):
        book = AddressBook()
        book.bind("root.0", "127.0.0.1", 9001)
        assert book.resolve("root.0") == ("127.0.0.1", 9001)
        assert book.knows("root.0")
        assert not book.knows("root.1")
        assert book.resolve("root.1") is None

    def test_fallback_routes_unknown_addresses(self):
        book = AddressBook(fallback=("127.0.0.1", 9999))
        book.bind("root.0", "127.0.0.1", 9001)
        assert book.resolve("anything-else") == ("127.0.0.1", 9999)
        assert book.resolve("root.0") == ("127.0.0.1", 9001)

    def test_bind_validates(self):
        book = AddressBook()
        with pytest.raises(AddressError):
            book.bind("bad addr", "127.0.0.1", 9001)
        with pytest.raises(AddressError):
            book.bind("ok", "127.0.0.1", 0)

    def test_wire_round_trip(self):
        book = AddressBook(fallback=("127.0.0.1", 9999))
        book.bind("root", "127.0.0.1", 9000)
        book.bind("root.0", "127.0.0.1", 9001)
        clone = AddressBook.from_wire(book.to_wire())
        assert clone.resolve("root.0") == ("127.0.0.1", 9001)
        assert clone.resolve("unknown") == ("127.0.0.1", 9999)
        assert len(clone) == len(book)


class TestServiceIntegration:
    def test_retire_server_rejects_malformed_successor(self):
        from repro.core import LocationService, build_table2_hierarchy

        svc = LocationService(build_table2_hierarchy())
        with pytest.raises(AddressError):
            svc.retire_server("root.0", "not a:valid successor")
        # The reject happened before any state change.
        assert "root.0" in svc.servers
        assert "root.0" not in svc.retired_servers
