"""Property tests: FrameDecoder resynchronisation under random damage.

The byzantine lanes (PR 9) corrupt 2% of socket frames at arbitrary
byte offsets; the decoder's contract is that one damaged byte costs *at
most the frame it actually hit*, never the connection.  These tests
drive that contract with hypothesis-chosen corruption offsets into
multi-frame TCP streams and multi-frame UDP datagrams:

* every frame the corruption did not touch still decodes, in order;
* at most one frame is lost per flipped byte;
* the decoder ends clean (empty buffer after flush), so the stream
  stays usable for everything that follows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as m
from repro.net.wire import FrameDecoder, encode_frame


def _frame(index: int) -> tuple[bytes, str]:
    """One encoded frame plus the object id that identifies it."""
    oid = f"obj-{index}"
    messages = [
        m.PosQueryReq(request_id=f"r-{index}", reply_to="driver", object_id=oid),
        m.PosQueryFwd(query_id=f"q-{index}", object_id=oid, entry_server="driver"),
    ]
    return encode_frame("driver", f"leaf.{index}", messages), oid


def _decoded_ids(frames: list[tuple[str, str, list]]) -> list[str]:
    return [batch[0].object_id for _, _, batch in frames]


def _chunked(data: bytes, rng_sizes: list[int]):
    """Split ``data`` at hypothesis-chosen points (stream chunking)."""
    out, start = [], 0
    for size in rng_sizes:
        if start >= len(data):
            break
        out.append(data[start : start + size])
        start += size
    if start < len(data):
        out.append(data[start:])
    return out


@st.composite
def corrupted_stream(draw):
    """A multi-frame stream, one byte flipped at a random offset."""
    count = draw(st.integers(min_value=2, max_value=6))
    frames = [_frame(i) for i in range(count)]
    blob = bytearray(b"".join(data for data, _ in frames))
    offset = draw(st.integers(min_value=0, max_value=len(blob) - 1))
    flip = draw(st.integers(min_value=1, max_value=255))
    blob[offset] ^= flip
    # Which frame does the damaged byte live in?
    start, hit = 0, None
    for index, (data, _) in enumerate(frames):
        if start <= offset < start + len(data):
            hit = index
            break
        start += len(data)
    sizes = draw(st.lists(st.integers(min_value=1, max_value=97), max_size=40))
    return bytes(blob), [oid for _, oid in frames], hit, sizes


class TestStreamResync:
    @settings(max_examples=200, deadline=None)
    @given(case=corrupted_stream())
    def test_one_flipped_byte_costs_at_most_one_frame(self, case):
        blob, oids, hit, sizes = case
        decoder = FrameDecoder()
        decoded: list[tuple[str, str, list]] = []
        for chunk in _chunked(blob, sizes):
            decoded.extend(decoder.feed(chunk))
        decoded.extend(decoder.flush())  # stream EOF rescues tail frames

        got = _decoded_ids(decoded)
        survivors = [oid for i, oid in enumerate(oids) if i != hit]
        # Every untouched frame decodes; the hit frame may survive too
        # (e.g. a version-byte bump still parses as the v2 layout).
        assert [oid for oid in got if oid != oids[hit]] == survivors
        assert len(got) >= len(oids) - 1
        # The decoder ends clean: nothing buffered, ready for more.
        assert decoder.pending_bytes == 0

    @settings(max_examples=60, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=5),
        cut=st.integers(min_value=0, max_value=10_000),
        sizes=st.lists(st.integers(min_value=1, max_value=97), max_size=40),
    )
    def test_truncated_stream_keeps_every_complete_frame(self, count, cut, sizes):
        frames = [_frame(i) for i in range(count)]
        blob = b"".join(data for data, _ in frames)
        cut = min(cut, len(blob))
        decoder = FrameDecoder()
        decoded: list[tuple[str, str, list]] = []
        for chunk in _chunked(blob[:cut], sizes):
            decoded.extend(decoder.feed(chunk))
        decoded.extend(decoder.flush())

        complete = []
        consumed = 0
        for data, oid in frames:
            consumed += len(data)
            if consumed <= cut:
                complete.append(oid)
        assert _decoded_ids(decoded) == complete
        assert decoder.pending_bytes == 0


@st.composite
def corrupted_datagrams(draw):
    """Several multi-frame datagrams; one byte flipped in one of them."""
    datagram_count = draw(st.integers(min_value=2, max_value=4))
    per_datagram = draw(st.integers(min_value=1, max_value=3))
    datagrams, oids = [], []
    index = 0
    for _ in range(datagram_count):
        parts = []
        for _ in range(per_datagram):
            data, oid = _frame(index)
            parts.append(data)
            oids.append(oid)
            index += 1
        datagrams.append(bytearray(b"".join(parts)))
    victim = draw(st.integers(min_value=0, max_value=datagram_count - 1))
    offset = draw(st.integers(min_value=0, max_value=len(datagrams[victim]) - 1))
    datagrams[victim][offset] ^= draw(st.integers(min_value=1, max_value=255))
    return [bytes(d) for d in datagrams], oids, victim, per_datagram


class TestDatagramResync:
    @settings(max_examples=150, deadline=None)
    @given(case=corrupted_datagrams())
    def test_damage_never_crosses_a_datagram_boundary(self, case):
        datagrams, oids, victim, per_datagram = case
        # One decoder per peer, flushed at each datagram boundary —
        # exactly the UDP receive path (_on_datagram feeds then flushes).
        decoder = FrameDecoder()
        got: list[str] = []
        lost_per_datagram: list[int] = []
        for number, datagram in enumerate(datagrams):
            frames = decoder.feed(datagram)
            frames.extend(decoder.flush())
            ids = _decoded_ids(frames)
            got.extend(ids)
            lost_per_datagram.append(per_datagram - len(ids))
            assert decoder.pending_bytes == 0
            if number != victim:
                # Clean datagrams are untouched by earlier damage.
                assert lost_per_datagram[-1] == 0

        # The flipped byte lives in one datagram; at most one of its
        # frames is lost, every other frame in the run decodes in order.
        assert sum(lost_per_datagram) <= 1
        expected = set(oids)
        assert set(got) <= expected
        assert len(expected - set(got)) <= 1
        assert got == [oid for oid in oids if oid in set(got)]
