"""Tests for the chaos layer's link-level fault injector.

Covers the runtime hook contract on both networks: injected drops land
in ``messages_dropped``, manufactured duplicates in
``messages_duplicated`` (never in sent traffic), every rule firing in
``faults_injected`` — and the :class:`MessageLedger` delta accessors
that scenarios read those counters through.
"""

import asyncio
from dataclasses import dataclass

import pytest

from repro.chaos import FaultInjector, LinkFaults
from repro.runtime.asyncio_rt import AsyncioNetwork
from repro.runtime.base import Endpoint, Message, Response
from repro.runtime.latency import LatencyModel
from repro.runtime.simnet import SimNetwork
from repro.sim.metrics import MessageLedger


@dataclass(frozen=True, slots=True)
class Ping(Message):
    request_id: str
    reply_to: str
    payload: str = "ping"


@dataclass(frozen=True, slots=True)
class Pong(Response):
    request_id: str
    payload: str = "pong"


class Echo(Endpoint):
    """Replies Pong to every Ping, remembering arrival order."""

    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.received: list[Ping] = []
        self.on(Ping, self._on_ping)

    async def _on_ping(self, msg: Ping) -> None:
        self.received.append(msg)
        self.send(msg.reply_to, Pong(request_id=msg.request_id))


class Caller(Endpoint):
    pass


def _net():
    net = SimNetwork(latency=LatencyModel(base=0.0, per_entry=0.0))
    echo = net.join(Echo("echo"))
    caller = net.join(Caller("caller"))
    return net, echo, caller


def _ping(caller, rid="r0"):
    caller.send("echo", Ping(request_id=rid, reply_to="caller"))


class TestLinkFaultsValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ValueError):
            LinkFaults(duplicate_rate=-0.1)

    def test_delays_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            LinkFaults(delay=-1.0)
        with pytest.raises(ValueError):
            LinkFaults(jitter=-0.5)


class TestInjectedDrops:
    def test_severed_link_drops_and_counts(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.sever("caller", "echo")
        _ping(caller)
        net.run()
        assert echo.received == []
        assert net.stats.messages_dropped == 1
        assert net.stats.faults_injected == 1
        # The sender still paid for the send.
        assert net.stats.messages_sent == 1

    def test_drop_rate_one_drops_everything(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.set_link("caller", "echo", LinkFaults(drop_rate=1.0))
        for i in range(3):
            _ping(caller, f"r{i}")
        net.run()
        assert echo.received == []
        assert net.stats.messages_dropped == 3
        assert net.stats.faults_injected == 3

    def test_drop_rate_zero_is_transparent(self):
        net, echo, caller = _net()
        FaultInjector(net)  # installed but no rules
        _ping(caller)
        net.run()
        assert len(echo.received) == 1
        assert net.stats.messages_dropped == 0
        assert net.stats.faults_injected == 0

    def test_reverse_direction_unaffected_by_directed_rule(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        # Only the reply direction is cut: the ping lands, the pong dies.
        injector.set_link("echo", "caller", LinkFaults(severed=True))
        _ping(caller)
        net.run()
        assert len(echo.received) == 1
        assert net.stats.messages_dropped == 1


class TestInjectedDuplicates:
    def test_duplicate_rate_one_delivers_twice(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.set_link("caller", "echo", LinkFaults(duplicate_rate=1.0))
        _ping(caller)
        net.run()
        assert len(echo.received) == 2
        assert net.stats.messages_duplicated == 1
        # The duplicate is manufactured by the network, not the sender:
        # sent traffic still counts one Ping (plus the two Pong replies).
        assert net.stats.by_type["Ping"] == 1

    def test_batch_path_duplicates_within_group(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.set_link("caller", "echo", LinkFaults(duplicate_rate=1.0))
        net.transmit_many(
            "caller",
            "echo",
            [Ping(request_id=f"r{i}", reply_to="caller") for i in range(2)],
        )
        net.run()
        assert len(echo.received) == 4
        assert net.stats.messages_duplicated == 2


class TestInjectedDelay:
    def test_extra_delay_holds_delivery(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.set_link("caller", "echo", LinkFaults(delay=0.5))

        async def when_received():
            _ping(caller)
            while not echo.received:
                await net.loop.sleep(0.05)
            return net.loop.now

        arrived = net.run_coro(when_received())
        assert arrived >= 0.5
        assert net.stats.faults_injected == 1

    def test_delayed_link_reorders_against_clean_link(self):
        net, echo, caller = _net()
        other = net.join(Caller("other"))
        injector = FaultInjector(net)
        injector.set_link("caller", "echo", LinkFaults(delay=1.0))
        _ping(caller, "slow")  # sent first, delayed 1 s
        other.send("echo", Ping(request_id="fast", reply_to="other"))
        net.run()
        assert [p.request_id for p in echo.received] == ["fast", "slow"]


class TestRulePrecedence:
    def test_exact_pair_beats_wildcards(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.set_link("*", "echo", LinkFaults(severed=True))
        injector.set_link("caller", "echo", LinkFaults())  # exact: clean
        _ping(caller)
        net.run()
        assert len(echo.received) == 1

    def test_src_wildcard_beats_dst_wildcard(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.set_link("*", "echo", LinkFaults(severed=True))
        injector.set_link("caller", "*", LinkFaults())  # (src, *) wins
        _ping(caller)
        net.run()
        assert len(echo.received) == 1

    def test_global_wildcard_applies_to_everything(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.set_link("*", "*", LinkFaults(severed=True))
        _ping(caller)
        net.run()
        assert echo.received == []


class TestPartition:
    def test_partition_severs_cross_links_only(self):
        net = SimNetwork(latency=LatencyModel(base=0.0, per_entry=0.0))
        a, b = net.join(Echo("a")), net.join(Echo("b"))
        c = net.join(Echo("c"))
        outsider = net.join(Caller("outsider"))
        injector = FaultInjector(net)
        assert injector.partition(["a"], ["b", "c"]) == 4

        a.send("b", Ping(request_id="x", reply_to="a"))  # cross: dropped
        b.send("a", Ping(request_id="y", reply_to="b"))  # cross: dropped
        b.send("c", Ping(request_id="z", reply_to="b"))  # within group: ok
        outsider.send("a", Ping(request_id="w", reply_to="outsider"))  # ok
        net.run()
        assert b.received == []
        assert [p.request_id for p in c.received] == ["z"]
        assert [p.request_id for p in a.received] == ["w"]
        assert net.stats.messages_dropped == 2

    def test_heal_partition_restores_exactly_the_severed_set(self):
        net = SimNetwork(latency=LatencyModel(base=0.0, per_entry=0.0))
        a, b = net.join(Echo("a")), net.join(Echo("b"))
        injector = FaultInjector(net)
        # An unrelated rule installed before the partition must survive it.
        injector.set_link("b", "a", LinkFaults(severed=True))
        injector.partition(["a"], ["b"])
        assert injector.heal_partition() == 2
        a.send("b", Ping(request_id="x", reply_to="a"))
        b.send("a", Ping(request_id="y", reply_to="b"))
        net.run()
        assert [p.request_id for p in b.received] == ["x"]
        # heal_partition removed the (b, a) sever it owned — the earlier
        # manual rule was overwritten by partition(); a fresh heal is a
        # no-op and traffic flows.
        assert injector.heal_partition() == 0

    def test_sever_heal_round_trip(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.sever("caller", "echo")
        _ping(caller, "dropped")
        net.run()
        injector.heal("caller", "echo")
        _ping(caller, "lands")
        net.run()
        assert [p.request_id for p in echo.received] == ["lands"]


class TestHousekeeping:
    def test_clear_removes_all_rules(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.sever("caller", "echo")
        injector.partition(["caller"], ["echo"])
        injector.clear()
        _ping(caller)
        net.run()
        assert len(echo.received) == 1

    def test_detach_uninstalls_from_network(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        injector.sever("caller", "echo")
        injector.detach()
        assert net.fault_injector is None
        _ping(caller)
        net.run()
        assert len(echo.received) == 1

    def test_note_fault_counts_out_of_band_chaos(self):
        net, _, _ = _net()
        injector = FaultInjector(net)
        injector.note_fault()
        injector.note_fault(count=3)
        assert net.stats.faults_injected == 4

    def test_seeded_rng_replays_identically(self):
        def run_once():
            net, echo, caller = _net()
            injector = FaultInjector(net, seed=42)
            injector.set_link("caller", "echo", LinkFaults(drop_rate=0.5))
            for i in range(20):
                _ping(caller, f"r{i}")
            net.run()
            return [p.request_id for p in echo.received]

        assert run_once() == run_once()


class TestLedgerAccessors:
    def test_dropped_duplicated_and_faults_deltas(self):
        net, echo, caller = _net()
        injector = FaultInjector(net)
        ledger = MessageLedger(net.stats)
        injector.set_link("caller", "echo", LinkFaults(drop_rate=1.0))
        _ping(caller, "r0")
        net.run()
        injector.set_link("caller", "echo", LinkFaults(duplicate_rate=1.0))
        _ping(caller, "r1")
        net.run()
        assert ledger.dropped_deliveries() == 1
        assert ledger.duplicated_deliveries() == 1
        assert ledger.faults_injected() == 2

        ledger.rebase()
        assert ledger.dropped_deliveries() == 0
        assert ledger.duplicated_deliveries() == 0
        assert ledger.faults_injected() == 0


class TestAsyncioNetworkHook:
    """The identical injector drives the asyncio runtime's hook."""

    def test_sever_and_duplicate_on_asyncio(self):
        async def scenario():
            net = AsyncioNetwork(latency=LatencyModel(base=1e-5, per_entry=0.0))
            echo = net.join(Echo("echo"))
            caller = net.join(Caller("caller"))
            injector = FaultInjector(net)

            injector.sever("caller", "echo")
            caller.send("echo", Ping(request_id="dropped", reply_to="caller"))
            await net.quiesce()
            assert echo.received == []
            assert net.stats.messages_dropped == 1

            injector.heal("caller", "echo")
            injector.set_link("caller", "echo", LinkFaults(duplicate_rate=1.0))
            caller.send("echo", Ping(request_id="doubled", reply_to="caller"))
            # quiesce() waits for handler tasks, not latency timers — let
            # the 10 µs delivery timers fire before asserting.
            await asyncio.sleep(0.05)
            await net.quiesce()
            assert len(echo.received) == 2
            assert net.stats.messages_duplicated == 1
            assert net.stats.faults_injected >= 2

        asyncio.run(scenario())
