"""Tests for the simulated network runtime."""

import pytest

from repro.errors import TransportError
from repro.runtime.base import Endpoint, Message, Response
from repro.runtime.latency import CostModel, LatencyModel
from repro.runtime.simnet import SimNetwork

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Ping(Message):
    request_id: str
    reply_to: str
    payload: str = "ping"


@dataclass(frozen=True, slots=True)
class Pong(Response):
    request_id: str
    payload: str = "pong"


class Echo(Endpoint):
    """Replies Pong to every Ping."""

    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.received: list[Ping] = []
        self.on(Ping, self._on_ping)

    async def _on_ping(self, msg: Ping) -> None:
        self.received.append(msg)
        self.send(msg.reply_to, Pong(request_id=msg.request_id))


class Caller(Endpoint):
    pass


class TestDelivery:
    def test_round_trip(self):
        net = SimNetwork()
        echo = net.join(Echo("echo"))
        caller = net.join(Caller("caller"))

        async def call():
            rid = caller.next_request_id()
            res = await caller.request("echo", Ping(request_id=rid, reply_to="caller"))
            return res

        res = net.run_coro(call())
        assert isinstance(res, Pong)
        assert len(echo.received) == 1
        assert net.stats.messages_delivered == 2

    def test_latency_advances_virtual_time(self):
        net = SimNetwork(latency=LatencyModel(base=0.001, per_entry=0.0))
        net.join(Echo("echo"))
        caller = net.join(Caller("caller"))

        async def call():
            rid = caller.next_request_id()
            await caller.request("echo", Ping(request_id=rid, reply_to="caller"))
            return net.loop.now

        elapsed = net.run_coro(call())
        assert elapsed == pytest.approx(0.002)  # one hop each way

    def test_self_send_has_zero_latency(self):
        net = SimNetwork(latency=LatencyModel(base=0.5))
        echo = net.join(Echo("echo"))
        echo.send("echo", Ping(request_id="x", reply_to="echo"))
        net.run()
        assert net.loop.now == 0.0

    def test_duplicate_address_rejected(self):
        net = SimNetwork()
        net.join(Echo("echo"))
        with pytest.raises(TransportError):
            net.join(Echo("echo"))

    def test_dead_letter_counted(self):
        net = SimNetwork()
        caller = net.join(Caller("caller"))
        caller.send("nobody", Ping(request_id="x", reply_to="caller"))
        net.run()
        assert net.stats.dead_letters == 1

    def test_unhandled_message_recorded(self):
        net = SimNetwork()
        caller = net.join(Caller("caller"))
        other = net.join(Caller("other"))
        caller.send("other", Ping(request_id="x", reply_to="caller"))
        net.run()
        assert len(other.unhandled) == 1


class TestCpuCostModel:
    def test_service_time_serialises_processing(self):
        # Two pings arriving together at a server with 1 ms service time
        # must be processed back to back.
        net = SimNetwork(
            latency=LatencyModel(base=0.0, per_entry=0.0),
            costs=CostModel(service={"Ping": 0.001}, default=0.0),
        )
        echo = net.join(Echo("echo"))
        caller = net.join(Caller("caller"))
        for i in range(2):
            caller.send("echo", Ping(request_id=f"r{i}", reply_to="caller"))
        net.run()
        assert net.loop.now == pytest.approx(0.002)
        assert len(echo.received) == 2

    def test_zero_cost_default(self):
        net = SimNetwork(latency=LatencyModel(base=0.0))
        net.join(Echo("echo"))
        caller = net.join(Caller("caller"))
        caller.send("echo", Ping(request_id="r", reply_to="caller"))
        net.run()
        assert net.loop.now == 0.0


class TestFailureInjection:
    def test_crashed_endpoint_drops_messages(self):
        net = SimNetwork()
        net.join(Echo("echo"))
        caller = net.join(Caller("caller"))
        net.crash("echo")
        caller.send("echo", Ping(request_id="x", reply_to="caller"))
        net.run()
        assert net.stats.messages_dropped == 1
        assert net.stats.messages_delivered == 0

    def test_restore_resumes_delivery(self):
        net = SimNetwork()
        echo = net.join(Echo("echo"))
        caller = net.join(Caller("caller"))
        net.crash("echo")
        caller.send("echo", Ping(request_id="a", reply_to="caller"))
        net.run()
        net.restore("echo")
        caller.send("echo", Ping(request_id="b", reply_to="caller"))
        net.run()
        assert [p.request_id for p in echo.received] == ["b"]

    def test_request_timeout_on_drop(self):
        net = SimNetwork(drop_rate=1.0)
        net.join(Echo("echo"))
        caller = net.join(Caller("caller"))

        async def call():
            rid = caller.next_request_id()
            with pytest.raises(TransportError):
                await caller.request(
                    "echo", Ping(request_id=rid, reply_to="caller"), timeout=1.0
                )
            return net.loop.now

        assert net.run_coro(call()) == pytest.approx(1.0)

    def test_deterministic_drops_with_seed(self):
        outcomes = []
        for _ in range(2):
            net = SimNetwork(drop_rate=0.5, seed=42)
            net.join(Echo("echo"))
            caller = net.join(Caller("caller"))
            for i in range(20):
                caller.send("echo", Ping(request_id=f"r{i}", reply_to="caller"))
            net.run()
            outcomes.append(net.stats.messages_dropped)
        assert outcomes[0] == outcomes[1] > 0


class TestLatencyModel:
    def test_per_entry_cost(self):
        model = LatencyModel(base=0.001, per_entry=0.0001)

        @dataclass(frozen=True)
        class Bulk(Message):
            entries: tuple = ((1, 2), (3, 4), (5, 6))

        assert model.delay("a", "b", Bulk()) == pytest.approx(0.0013)

    def test_jitter_bounded_and_seeded(self):
        model = LatencyModel(base=0.001, jitter=0.0005, seed=7)
        msg = Ping(request_id="x", reply_to="y")
        delays = [model.delay("a", "b", msg) for _ in range(100)]
        assert all(0.001 <= d <= 0.0015 for d in delays)
        model2 = LatencyModel(base=0.001, jitter=0.0005, seed=7)
        assert delays == [model2.delay("a", "b", msg) for _ in range(100)]
