"""Tests for the per-destination coalescing send buffer and ``leave``.

``Endpoint.send_many`` / ``SimNetwork.transmit_many`` queue messages in a
per-(src, dst) outbox flushed once per loop turn, so a burst of batched
sends costs one delivery event per destination; ``SimNetwork.leave``
removes an endpoint entirely (retired-alias garbage collection) and
in-flight or later messages become dead letters instead of crashing the
simulation.
"""

from dataclasses import dataclass

from repro.runtime.base import Endpoint, Message
from repro.runtime.latency import LatencyModel
from repro.runtime.simnet import SimNetwork


@dataclass(frozen=True, slots=True)
class Note(Message):
    payload: int


class Sink(Endpoint):
    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.received: list[Note] = []
        self.on(Note, self._on_note)

    async def _on_note(self, msg: Note) -> None:
        self.received.append(msg)


class Sender(Endpoint):
    pass


def wired():
    net = SimNetwork(latency=LatencyModel(base=0.001, per_entry=0.0))
    sink = net.join(Sink("sink"))
    sender = net.join(Sender("sender"))
    return net, sink, sender


class TestSendMany:
    def test_batch_delivered_in_order(self):
        net, sink, sender = wired()
        sender.send_many("sink", [Note(i) for i in range(5)])
        net.run()
        assert [msg.payload for msg in sink.received] == [0, 1, 2, 3, 4]
        assert net.stats.messages_sent == 5
        assert net.stats.messages_delivered == 5

    def test_empty_batch_is_noop(self):
        net, sink, sender = wired()
        sender.send_many("sink", [])
        net.run()
        assert sink.received == []
        assert net.stats.messages_sent == 0

    def test_batch_arrives_together(self):
        """The whole batch shares one group arrival: every member becomes
        visible at the same virtual instant."""
        net = SimNetwork(latency=LatencyModel(base=0.001, per_entry=0.0))
        arrivals: list[float] = []

        class Stamper(Endpoint):
            def __init__(self):
                super().__init__("stamper")
                self.on(Note, self._on_note)

            async def _on_note(self, msg: Note) -> None:
                arrivals.append(net.loop.now)

        net.join(Stamper())
        sender = net.join(Sender("sender"))
        sender.send_many("stamper", [Note(i) for i in range(4)])
        net.run()
        assert len(arrivals) == 4
        assert len(set(arrivals)) == 1

    def test_interleaved_sends_coalesce_per_destination(self):
        net = SimNetwork(latency=LatencyModel(base=0.001, per_entry=0.0))
        a = net.join(Sink("a"))
        b = net.join(Sink("b"))
        sender = net.join(Sender("sender"))
        sender.send_many("a", [Note(1), Note(2)])
        sender.send_many("b", [Note(3)])
        sender.send_many("a", [Note(4)])
        net.run()
        assert [msg.payload for msg in a.received] == [1, 2, 4]
        assert [msg.payload for msg in b.received] == [3]

    def test_flush_forces_outbox_out(self):
        net, sink, sender = wired()
        sender.send_many("sink", [Note(7)])
        net.flush()  # moves the batch onto the wire without a loop turn
        net.run()
        assert [msg.payload for msg in sink.received] == [7]

    def test_batch_to_crashed_destination_dropped(self):
        net, sink, sender = wired()
        net.crash("sink")
        sender.send_many("sink", [Note(i) for i in range(3)])
        net.run()
        assert sink.received == []
        assert net.stats.messages_dropped == 3


class TestLeave:
    def test_messages_to_left_endpoint_are_dead_letters(self):
        net, sink, sender = wired()
        net.leave("sink")
        sender.send("sink", Note(1))
        sender.send_many("sink", [Note(2), Note(3)])
        net.run()
        assert sink.received == []
        assert net.stats.dead_letters == 3
        assert net.stats.messages_dropped == 0

    def test_leave_while_batch_in_flight(self):
        net, sink, sender = wired()
        sender.send_many("sink", [Note(1), Note(2)])
        net.flush()  # on the wire, 1 ms from arriving
        net.leave("sink")
        net.run()
        assert sink.received == []
        assert net.stats.dead_letters == 2

    def test_leave_is_idempotent_and_unknown_safe(self):
        net, sink, sender = wired()
        net.leave("sink")
        net.leave("sink")
        net.leave("never-joined")
        assert "sink" not in net.addresses()

    def test_restore_after_leave_is_a_noop(self):
        net, sink, sender = wired()
        net.crash("sink")
        net.leave("sink")
        net.restore("sink")  # departed endpoint: nothing to restore
        assert "sink" not in net.addresses()
        sender.send("sink", Note(1))
        net.run()
        assert net.stats.dead_letters == 1
