"""The extension subsystems (events, stationary tracking) on asyncio.

These run the exact same endpoint code as the simulated-runtime tests,
demonstrating the runtime abstraction holds for the extensions too.
"""

import asyncio

from repro.core import (
    LocationClient,
    LocationServer,
    SensorCell,
    StationaryTracker,
    TrackedObject,
    build_table2_hierarchy,
)
from repro.core.events import AreaOccupancy, Proximity
from repro.geo import Point, Rect
from repro.runtime.asyncio_rt import AsyncioNetwork
from repro.runtime.latency import LatencyModel


def build_network():
    net = AsyncioNetwork(latency=LatencyModel(base=1e-5, per_entry=0.0))
    hierarchy = build_table2_hierarchy()
    servers = {
        sid: net.join(LocationServer(hierarchy.config(sid)))
        for sid in hierarchy.server_ids()
    }
    return net, servers


class TestEventsOnAsyncio:
    def test_area_occupancy_fires(self):
        async def scenario():
            net, servers = build_network()
            client = net.join(LocationClient("watcher", entry_server="root.0"))
            sub_id = await client.subscribe(
                AreaOccupancy(Rect(0, 0, 300, 300), threshold=1, req_overlap=0.5),
                poll_interval=0.01,
            )
            obj = net.join(TrackedObject("walker", entry_server="root.0"))
            await obj.register(Point(100, 100), 25.0, 100.0)
            for _ in range(100):
                await asyncio.sleep(0.01)
                if client.notifications:
                    break
            assert client.notifications and client.notifications[0].fired
            assert await client.unsubscribe(sub_id)

        asyncio.run(scenario())

    def test_proximity_fires(self):
        async def scenario():
            net, servers = build_network()
            client = net.join(LocationClient("watcher", entry_server="root.1"))
            a = net.join(TrackedObject("a", entry_server="root.0"))
            b = net.join(TrackedObject("b", entry_server="root.0"))
            await a.register(Point(100, 100), 25.0, 100.0)
            await b.register(Point(1400, 1400), 25.0, 100.0)
            await client.subscribe(Proximity("a", "b", distance=50.0), poll_interval=0.01)
            await asyncio.sleep(0.05)
            assert client.notifications == []
            await a.report(Point(1395, 1395))
            for _ in range(100):
                await asyncio.sleep(0.01)
                if client.notifications:
                    break
            assert client.notifications and client.notifications[0].fired

        asyncio.run(scenario())


class TestTrackingOnAsyncio:
    def test_badge_lifecycle(self):
        async def scenario():
            net, servers = build_network()
            tracker = net.join(
                StationaryTracker(
                    "building",
                    [
                        SensorCell("lobby", Rect(0, 0, 20, 20)),
                        SensorCell("lab", Rect(20, 0, 40, 20)),
                    ],
                    entry_server="root.0",
                )
            )
            offered = await tracker.sight("badge-1", "lobby")
            assert offered > 0
            await tracker.sight("badge-1", "lab")
            client = net.join(LocationClient("c", entry_server="root.3"))
            ld = await client.pos_query("badge-1")
            assert ld.pos == Point(30, 10)
            assert await tracker.badge_lost("badge-1")
            await net.quiesce()
            assert await client.pos_query("badge-1") is None

        asyncio.run(scenario())
