"""Integration tests: the identical server code on a real asyncio loop."""

import asyncio

import pytest

from repro.core import LocationServer, TrackedObject, LocationClient, build_table2_hierarchy
from repro.geo import Point, Rect
from repro.runtime.asyncio_rt import AsyncioNetwork
from repro.runtime.latency import LatencyModel


def build_network():
    """The Table-2 hierarchy on asyncio with microsecond-scale latency."""
    net = AsyncioNetwork(latency=LatencyModel(base=1e-5, per_entry=0.0))
    hierarchy = build_table2_hierarchy()
    servers = {
        sid: net.join(LocationServer(hierarchy.config(sid)))
        for sid in hierarchy.server_ids()
    }
    return net, hierarchy, servers


def run(coro):
    return asyncio.run(coro)


class TestAsyncioIntegration:
    def test_register_update_query(self):
        async def scenario():
            net, hierarchy, servers = build_network()
            obj = net.join(TrackedObject("truck", entry_server="root.0"))
            offered = await obj.register(Point(100, 100), 25.0, 100.0)
            assert offered == 25.0
            assert obj.agent == "root.0"
            await obj.report(Point(200, 200))
            client = net.join(LocationClient("c1", entry_server="root.3"))
            ld = await client.pos_query("truck")
            assert ld.pos == Point(200, 200)
            await net.quiesce()
            return servers

        servers = run(scenario())
        assert servers["root"].visitors.forward_ref("truck") == "root.0"

    def test_handover_across_leaves(self):
        async def scenario():
            net, hierarchy, servers = build_network()
            obj = net.join(TrackedObject("truck", entry_server="root.0"))
            await obj.register(Point(700, 100), 25.0, 100.0)
            res = await obj.report(Point(800, 100))
            assert res.ok
            assert obj.agent == "root.1"
            await net.quiesce()
            assert "truck" not in servers["root.0"].visitors
            assert servers["root"].visitors.forward_ref("truck") == "root.1"

        run(scenario())

    def test_range_query_spanning_servers(self):
        async def scenario():
            net, hierarchy, servers = build_network()
            for i, (x, y) in enumerate(
                [(100, 100), (1400, 100), (100, 1400), (1400, 1400)]
            ):
                obj = net.join(TrackedObject(f"o{i}", entry_server="root.0"))
                await obj.register(Point(x, y), 25.0, 100.0)
            client = net.join(LocationClient("c1", entry_server="root.0"))
            answer = await client.range_query(
                Rect(0, 0, 1500, 1500), req_acc=50.0, req_overlap=0.3
            )
            assert {oid for oid, _ in answer.entries} == {"o0", "o1", "o2", "o3"}
            assert answer.servers_involved == 4

        run(scenario())

    def test_neighbor_query(self):
        async def scenario():
            net, hierarchy, servers = build_network()
            near = net.join(TrackedObject("near", entry_server="root.0"))
            await near.register(Point(200, 200), 25.0, 100.0)
            far = net.join(TrackedObject("far", entry_server="root.0"))
            await far.register(Point(1400, 1400), 25.0, 100.0)
            client = net.join(LocationClient("c1", entry_server="root.0"))
            answer = await client.neighbor_query(Point(150, 150), req_acc=50.0)
            assert answer.result.nearest[0] == "near"

        run(scenario())

    def test_concurrent_clients(self):
        """Many clients operating simultaneously on the real event loop."""

        async def scenario():
            net, hierarchy, servers = build_network()
            objs = [
                net.join(TrackedObject(f"o{i}", entry_server="root.0")) for i in range(12)
            ]
            await asyncio.gather(
                *(
                    obj.register(Point(50 + 120 * i, 100), 25.0, 100.0)
                    for i, obj in enumerate(objs)
                )
            )
            client = net.join(LocationClient("c1", entry_server="root.3"))
            descriptors = await asyncio.gather(
                *(client.pos_query(f"o{i}") for i in range(12))
            )
            assert all(ld is not None for ld in descriptors)
            await net.quiesce()

        run(scenario())

    def test_timeout_against_crashed_server(self):
        async def scenario():
            net, hierarchy, servers = build_network()
            obj = net.join(TrackedObject("truck", entry_server="root.0"))
            await obj.register(Point(100, 100), 25.0, 100.0)
            net.crash("root.0")
            client = net.join(
                LocationClient("c1", entry_server="root.3", timeout=0.05)
            )
            from repro.errors import TransportError

            with pytest.raises(TransportError):
                await client.pos_query("truck")

        run(scenario())
