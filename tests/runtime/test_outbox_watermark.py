"""Coalescing-outbox watermarks (NIC-batching model).

The PR-3 outbox flushed exactly once per loop turn; the watermarks
bound burstiness from both sides: a full bucket
(``outbox_flush_count``) flushes immediately, and an armed bucket
flushes at latest ``outbox_flush_delay`` virtual seconds after its
first message — letting traffic coalesce *across* turns with bounded
added latency.
"""

import pytest

from repro.runtime.latency import LatencyModel
from repro.runtime.simnet import SimNetwork

from tests.runtime.test_send_many import Note, Sender, Sink


def wired(**kwargs):
    net = SimNetwork(latency=LatencyModel(base=0.001, per_entry=0.0), **kwargs)
    sink = net.join(Sink("sink"))
    sender = net.join(Sender("sender"))
    return net, sink, sender


class TestSizeWatermark:
    def test_full_bucket_flushes_immediately(self):
        net, sink, sender = wired(outbox_flush_count=4)
        sender.send_many("sink", [Note(i) for i in range(4)])
        # The watermark fired synchronously: nothing left buffered.
        assert net.watermark_flushes == 1
        assert not net._outbox
        net.run()
        assert [msg.payload for msg in sink.received] == [0, 1, 2, 3]

    def test_partial_bucket_waits_for_turn_flush(self):
        net, sink, sender = wired(outbox_flush_count=4)
        sender.send_many("sink", [Note(0), Note(1)])
        assert net.watermark_flushes == 0
        assert net._outbox  # still buffered until the turn-end sweep
        net.run()
        assert len(sink.received) == 2

    def test_watermark_flushes_only_the_full_bucket(self):
        net, sink, sender = wired(outbox_flush_count=3)
        other = net.join(Sink("other"))
        sender.send_many("other", [Note(100)])
        sender.send_many("sink", [Note(i) for i in range(3)])
        assert net.watermark_flushes == 1
        assert ("sender", "other") in net._outbox  # other bucket untouched
        net.run()
        assert len(sink.received) == 3
        assert len(other.received) == 1

    def test_count_accumulates_across_calls(self):
        net, sink, sender = wired(outbox_flush_count=4)
        sender.send_many("sink", [Note(0), Note(1)])
        sender.send_many("sink", [Note(2), Note(3)])
        assert net.watermark_flushes == 1
        net.run()
        assert len(sink.received) == 4

    def test_invalid_watermark_rejected(self):
        with pytest.raises(ValueError):
            SimNetwork(outbox_flush_count=0)
        with pytest.raises(ValueError):
            SimNetwork(outbox_flush_delay=-1.0)


class TestDelayWatermark:
    def test_flush_deferred_by_delay(self):
        net, sink, sender = wired(outbox_flush_delay=0.010)
        sender.send_many("sink", [Note(0)])
        # One extra turn later the message is still buffered (the sweep
        # is armed at +10 ms, per-hop latency is 1 ms).
        net.run(max_time=0.005)
        assert sink.received == []
        net.run()
        assert len(sink.received) == 1
        # Arming + latency: delivery lands at ~delay + latency.
        assert net.loop.now == pytest.approx(0.011)

    def test_size_watermark_overrides_delay(self):
        net, sink, sender = wired(outbox_flush_count=2, outbox_flush_delay=10.0)
        sender.send_many("sink", [Note(0), Note(1)])
        assert net.watermark_flushes == 1
        net.run(max_time=1.0)
        assert len(sink.received) == 2

    def test_cross_turn_coalescing(self):
        """Two sends in different turns share one delivery event under a
        delay watermark — the cross-turn coalescing the per-turn flush
        could never give."""
        net, sink, sender = wired(outbox_flush_delay=0.050)
        sender.send_many("sink", [Note(0)])
        net.loop.call_later(0.002, lambda: sender.send_many("sink", [Note(1)]))
        net.run()
        assert [msg.payload for msg in sink.received] == [0, 1]
