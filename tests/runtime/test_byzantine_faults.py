"""Receive-path hardening against byzantine traffic (PR 9).

Three layers under test, each in isolation (the composed defense is
proven end to end by ``repro.sim.byzantine``):

* the :class:`~repro.chaos.FaultInjector` byzantine rules — every
  mutation it manufactures is one :func:`~repro.runtime.validation.
  find_defect` detects, and every stale replay is rewound past the
  legitimate in-flight window;
* the server quarantine — damaged messages are rejected before any
  store or collector is touched, beyond-horizon epochs are rejected
  while in-horizon lag still heals;
* the acked at-least-once path-repair lane — per-hop ``PathAck``,
  bounded retries, idempotent re-application, and schema-evolution
  defaults for frames from pre-PR-9 peers.
"""

import math

from repro.chaos import FaultInjector, LinkFaults
from repro.core import messages as m
from repro.geo import Point
from repro.model import SightingRecord
from repro.net import wire
from repro.runtime.base import Endpoint, NetworkStats
from repro.runtime.validation import find_defect
from repro.sim.scenario import table2_service

from tests.cluster.test_migration import Reporter


class _StubNetwork:
    """Just enough network for a FaultInjector: a stats sink."""

    def __init__(self):
        self.stats = NetworkStats()
        self.fault_injector = None


def _injector(**faults) -> FaultInjector:
    injector = FaultInjector(_StubNetwork(), seed=7)
    injector.set_link("*", "*", LinkFaults(**faults))
    return injector


def _sighting(oid: str, pos: Point) -> SightingRecord:
    return SightingRecord(oid, 0.0, pos, 10.0)


class TestInjectorByzantineRules:
    def test_every_mutation_is_validator_detectable(self):
        injector = _injector(corrupt_rate=1.0)
        samples = [
            m.UpdateReq(
                request_id="r1",
                reply_to="dev",
                sighting=_sighting("o1", Point(10.0, 10.0)),
            ),
            m.RegisterReq(
                request_id="r2",
                reply_to="dev",
                sighting=_sighting("o2", Point(5.0, 5.0)),
                des_acc=25.0,
                min_acc=100.0,
                registrar="dev",
            ),
            m.PosQueryReq(request_id="r3", reply_to="dev", object_id="o3"),
        ]
        for message in samples:
            assert find_defect(message) is None
            for _ in range(10):  # every draw, not one lucky field
                mutated = injector.mutate_message(message)
                assert mutated is not None
                assert find_defect(mutated) is not None

    def test_verdict_mutates_only_when_asked(self):
        message = m.PosQueryReq(request_id="r", reply_to="dev", object_id="o")
        injector = _injector(corrupt_rate=1.0)
        deliver, _, _, mutated, _ = injector.verdict("a", "b", message)
        assert deliver and find_defect(mutated) is not None
        # Socket transports corrupt at the frame layer instead.
        deliver, _, _, untouched, _ = injector.verdict(
            "a", "b", message, mutate=False
        )
        assert deliver and untouched is message

    def test_stale_replay_is_rewound_past_the_horizon_and_floored(self):
        injector = _injector(stale_epoch_rate=1.0)
        fresh = m.UpdateBatchReq(
            request_id="r", reply_to="dev", sightings=(), epoch=3
        )
        deliver, _, _, original, replay = injector.verdict("a", "b", fresh)
        assert deliver and original is fresh
        assert replay is not None and replay.epoch == 0  # floored, not negative
        # The replay is a manufactured delivery, accounted like a duplicate.
        assert injector._network.stats.messages_duplicated == 1
        assert injector._network.stats.faults_injected == 1

    def test_make_stale_skips_epochless_messages(self):
        injector = _injector(stale_epoch_rate=1.0)
        message = m.PosQueryReq(request_id="r", reply_to="dev", object_id="o")
        assert injector.make_stale(message) is None
        _, _, _, _, replay = injector.verdict("a", "b", message)
        assert replay is None

    def test_corrupt_bytes_always_damages_the_frame(self):
        injector = _injector(corrupt_rate=1.0)
        frame = wire.encode_frame(
            "a", "b", [m.PosQueryReq(request_id="r", reply_to="a", object_id="o")]
        )
        for _ in range(20):
            assert injector.corrupt_bytes(frame) != frame


class TestServerQuarantine:
    def test_damaged_update_rejected_before_the_store(self):
        svc, homes = table2_service(object_count=20, seed=3)
        oid, leaf_id = next(iter(homes.items()))
        leaf = svc.servers[leaf_id]
        reporter = Reporter()
        svc.network.join(reporter)

        poisoned = m.UpdateReq(
            request_id="bad",
            reply_to=reporter.address,
            sighting=_sighting(oid, Point(float("nan"), float("nan"))),
        )
        reporter.send(leaf_id, poisoned)
        svc.settle()
        assert leaf.stats.messages_quarantined == 1
        assert svc.network.stats.messages_quarantined == 1
        stored = leaf.store.sightings.get(oid)
        assert stored is not None and not math.isnan(stored.pos.x)

        # The quarantine degrades to the retry path: a clean re-send of
        # the same report (fresh request id) lands normally.
        res = svc.run(
            reporter.send_update(leaf_id, oid, Point(100.0, 100.0))
        )
        assert res.ok
        svc.check_consistency()

    def test_beyond_horizon_epoch_rejected_in_horizon_heals(self):
        svc, homes = table2_service(object_count=20, seed=3)
        oid, leaf_id = next(iter(homes.items()))
        leaf = svc.servers[leaf_id]
        leaf.topology_epoch = 5
        reporter = Reporter()
        svc.network.join(reporter)
        pos = svc.servers[leaf_id].config.area.center

        def envelope(request_id: str, epoch: int) -> m.UpdateBatchReq:
            return m.UpdateBatchReq(
                request_id=request_id,
                reply_to=reporter.address,
                sightings=(_sighting(oid, pos),),
                epoch=epoch,
            )

        # Three epochs behind: a replayed snapshot, rejected unanswered.
        reporter.send(leaf_id, envelope("ancient", epoch=2))
        svc.settle()
        assert leaf.stats.stale_epoch_rejected == 1

        # Two behind is legitimate in-flight lag: healed, answered.
        future = reporter.park("laggy")
        reporter.send(leaf_id, envelope("laggy", epoch=3))
        res = svc.run(reporter.wait("laggy", future))
        assert isinstance(res, m.UpdateBatchRes)
        assert all(outcome.ok for outcome in res.outcomes)
        assert leaf.stats.stale_epoch_rejected == 1  # unchanged


class TestPathRepairLane:
    def test_path_update_acked_per_hop(self):
        svc, homes = table2_service(object_count=20, seed=3)
        oid, leaf_id = next(iter(homes.items()))
        root = svc.hierarchy.root_id
        reporter = Reporter()
        svc.network.join(reporter)

        # The root's forwarding pointer for ``oid`` already names this
        # leaf, so the delivery is a pure (idempotent) retry — but it
        # must still be acked, or the sender would burn its retries.
        reporter.send(
            root,
            m.PathUpdate(
                object_id=oid,
                sender=leaf_id,
                request_id="repair-1",
                reply_to=reporter.address,
            ),
        )
        svc.settle()
        acks = [msg for msg in reporter.unhandled if isinstance(msg, m.PathAck)]
        assert [ack.request_id for ack in acks] == ["repair-1"]
        svc.check_consistency()

    def test_legacy_frame_decodes_with_defaults_and_is_not_acked(self):
        # A pre-PR-9 peer's PathUpdate has no request_id/reply_to on the
        # wire; the codec's trailing-default evolution fills them in.
        encoded = wire.encode(m.PathUpdate(object_id="o", sender="s"))
        encoded["f"] = encoded["f"][:2]  # strip the PR-9 trailing fields
        decoded = wire.decode(encoded)
        assert decoded == m.PathUpdate(object_id="o", sender="s")
        assert decoded.request_id == "legacy" and decoded.reply_to == ""

        svc, homes = table2_service(object_count=20, seed=3)
        oid, leaf_id = next(iter(homes.items()))
        reporter = Reporter()
        svc.network.join(reporter)
        reporter.send(
            svc.hierarchy.root_id, m.PathUpdate(object_id=oid, sender=leaf_id)
        )
        svc.settle()
        assert not reporter.unhandled  # applied, but nothing to ack

    def test_repair_retries_then_abandons_when_acks_never_return(self):
        svc, homes = table2_service(object_count=20, seed=3)
        leaf_id = next(iter(homes.values()))
        leaf = svc.servers[leaf_id]
        root = svc.hierarchy.root_id
        injector = FaultInjector(svc.network, seed=1)
        # Sever only the ack direction: every delivery lands and is
        # (idempotently) applied, every ack is lost.
        injector.set_link(root, leaf_id, LinkFaults(severed=True))

        leaf._spawn_repair(
            root, m.PathUpdate(object_id="ghost", sender=leaf.address)
        )
        svc.settle()
        assert leaf.stats.path_repair_resends == 3
        assert leaf.stats.path_repairs_abandoned == 1
        # Idempotent application: four deliveries, one forwarding entry.
        assert svc.servers[root].visitors.forward_ref("ghost") == leaf.address
