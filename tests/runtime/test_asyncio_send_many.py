"""The gather-based coalescing ``send_many`` on the asyncio runtime.

The simulated network already coalesced per-destination batches into
one delivery event; :meth:`AsyncioNetwork.transmit_many` carries the
same envelope win onto real event loops — one latency computation and
one scheduled callback per batch instead of one timer per message.
"""

import asyncio
from dataclasses import dataclass

from repro.core import TrackedObject, build_table2_hierarchy
from repro.geo import Point
from repro.runtime.asyncio_rt import AsyncioNetwork
from repro.runtime.base import Endpoint, Message
from repro.runtime.latency import LatencyModel


@dataclass(frozen=True, slots=True)
class Note(Message):
    payload: int


class Sink(Endpoint):
    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.received: list[Note] = []
        self.on(Note, self._on_note)

    async def _on_note(self, msg: Note) -> None:
        self.received.append(msg)


class Sender(Endpoint):
    pass


def run(coro):
    return asyncio.run(coro)


class TestAsyncioSendMany:
    def test_batch_delivered_in_order(self):
        async def scenario():
            net = AsyncioNetwork(latency=LatencyModel(base=1e-5, per_entry=0.0))
            sink = net.join(Sink("sink"))
            sender = net.join(Sender("sender"))
            sender.send_many("sink", [Note(i) for i in range(6)])
            await asyncio.sleep(0.01)
            return net, sink

        net, sink = run(scenario())
        assert [msg.payload for msg in sink.received] == list(range(6))
        assert net.stats.messages_sent == 6
        assert net.stats.messages_delivered == 6

    def test_zero_latency_batch_uses_call_soon(self):
        async def scenario():
            net = AsyncioNetwork(latency=LatencyModel(base=0.0, per_entry=0.0))
            sink = net.join(Sink("sink"))
            sender = net.join(Sender("sender"))
            sender.send_many("sink", [Note(0), Note(1)])
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            return sink

        sink = run(scenario())
        assert len(sink.received) == 2

    def test_crashed_destination_drops_batch(self):
        async def scenario():
            net = AsyncioNetwork(latency=LatencyModel(base=1e-5, per_entry=0.0))
            net.join(Sink("sink"))
            sender = net.join(Sender("sender"))
            net.crash("sink")
            sender.send_many("sink", [Note(0), Note(1)])
            sender.send_many("gone", [Note(2)])
            await asyncio.sleep(0.01)
            return net

        net = run(scenario())
        assert net.stats.messages_dropped == 2
        assert net.stats.dead_letters == 1
        assert net.stats.messages_delivered == 0

    def test_mid_flight_crash_drops_whole_batch(self):
        async def scenario():
            net = AsyncioNetwork(latency=LatencyModel(base=0.005, per_entry=0.0))
            sink = net.join(Sink("sink"))
            sender = net.join(Sender("sender"))
            sender.send_many("sink", [Note(0), Note(1), Note(2)])
            net.crash("sink")
            await asyncio.sleep(0.02)
            return net, sink

        net, sink = run(scenario())
        assert sink.received == []
        assert net.stats.messages_dropped == 3

    def test_protocol_batch_handlers_on_asyncio(self):
        """A real envelope path end to end: the service-side batched
        tick is sim-only, but the server handlers' sub-envelopes ride
        ``send_many`` — exercise an UpdateBatchReq against the asyncio
        runtime via the server handlers directly."""
        from repro.core import LocationServer, messages as m
        from repro.model import SightingRecord

        async def scenario():
            net = AsyncioNetwork(latency=LatencyModel(base=1e-5, per_entry=0.0))
            hierarchy = build_table2_hierarchy()
            for sid in hierarchy.server_ids():
                net.join(LocationServer(hierarchy.config(sid)))
            obj = net.join(TrackedObject("truck", entry_server="root.0"))
            await obj.register(Point(100, 100), 25.0, 100.0)
            res = await obj.request(
                "root.0",
                m.UpdateBatchReq(
                    request_id=obj.next_request_id(),
                    reply_to=obj.address,
                    sightings=(SightingRecord("truck", 0.0, Point(1200, 1200), 10.0),),
                ),
            )
            await net.quiesce()
            return res

        res = run(scenario())
        assert isinstance(res, m.UpdateBatchRes)
        assert res.outcomes[0].ok and res.outcomes[0].agent == "root.3"
