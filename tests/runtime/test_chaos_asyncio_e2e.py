"""Chaos end-to-end on the asyncio runtime: a full scenario workload
driven through ``FaultInjector`` loss, recovered entirely by the
protocol lane's retries — zero lost sightings at the end."""

import asyncio

import pytest

from repro.chaos import FaultInjector, LinkFaults
from repro.core.hierarchy import build_table2_hierarchy
from repro.core.server import LocationServer
from repro.net.scenario import drive_workload
from repro.runtime.asyncio_rt import AsyncioNetwork
from repro.sim.elastic import festival_surge_workload

pytestmark = pytest.mark.slow


def test_festival_surge_through_injected_loss():
    workload = festival_surge_workload(objects=50, ticks=3, seed=2)
    hierarchy = build_table2_hierarchy(1500.0)

    async def scenario():
        network = AsyncioNetwork()
        injector = FaultInjector(network, seed=2)
        for server_id in hierarchy.server_ids():
            server = LocationServer(hierarchy.config(server_id), sighting_ttl=1e9)
            server.topology_epoch = hierarchy.epoch
            network.join(server)
        # Every link from the workload driver into the hierarchy loses
        # 20% of its messages, both directions.
        for leaf_id in hierarchy.leaf_ids():
            injector.set_link(
                "wl-reporter", leaf_id, LinkFaults(drop_rate=0.2), symmetric=True
            )
        payload = await drive_workload(
            workload,
            hierarchy,
            network.join,
            timeout=0.4,
            retries=12,
            seed=2,
        )
        await network.quiesce()
        return payload, network.stats

    payload, stats = asyncio.run(scenario())
    assert payload["lost_sightings"] == 0
    assert payload["registered"] == 50
    assert stats.faults_injected > 0
    assert stats.messages_dropped > 0
