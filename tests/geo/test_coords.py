"""Tests for WGS84 coordinates and the local projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import GeoCoordinate, LocalProjection, Point, haversine_distance

STUTTGART = GeoCoordinate(48.7758, 9.1829)

lat = st.floats(min_value=-80, max_value=80, allow_nan=False)
lon = st.floats(min_value=-179, max_value=179, allow_nan=False)


class TestGeoCoordinate:
    def test_latitude_range_checked(self):
        with pytest.raises(GeometryError):
            GeoCoordinate(91.0, 0.0)

    def test_longitude_range_checked(self):
        with pytest.raises(GeometryError):
            GeoCoordinate(0.0, 181.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_distance(STUTTGART, STUTTGART) == 0.0

    def test_one_degree_latitude(self):
        a = GeoCoordinate(0.0, 0.0)
        b = GeoCoordinate(1.0, 0.0)
        # One degree of latitude is about 111.2 km.
        assert haversine_distance(a, b) == pytest.approx(111_195, rel=0.01)

    def test_symmetric(self):
        munich = GeoCoordinate(48.1351, 11.5820)
        assert haversine_distance(STUTTGART, munich) == pytest.approx(
            haversine_distance(munich, STUTTGART)
        )

    def test_stuttgart_munich(self):
        munich = GeoCoordinate(48.1351, 11.5820)
        # Known to be roughly 190 km.
        assert haversine_distance(STUTTGART, munich) == pytest.approx(190_000, rel=0.05)


class TestLocalProjection:
    def test_origin_maps_to_zero(self):
        proj = LocalProjection(STUTTGART)
        p = proj.to_local(STUTTGART)
        assert (p.x, p.y) == pytest.approx((0.0, 0.0))

    def test_pole_anchor_rejected(self):
        with pytest.raises(GeometryError):
            LocalProjection(GeoCoordinate(90.0, 0.0))

    def test_north_is_positive_y(self):
        proj = LocalProjection(STUTTGART)
        north = GeoCoordinate(STUTTGART.latitude + 0.01, STUTTGART.longitude)
        assert proj.to_local(north).y > 0
        assert proj.to_local(north).x == pytest.approx(0.0, abs=1e-6)

    def test_east_is_positive_x(self):
        proj = LocalProjection(STUTTGART)
        east = GeoCoordinate(STUTTGART.latitude, STUTTGART.longitude + 0.01)
        assert proj.to_local(east).x > 0

    def test_roundtrip(self):
        proj = LocalProjection(STUTTGART)
        coord = GeoCoordinate(48.78, 9.20)
        back = proj.to_geo(proj.to_local(coord))
        assert back.latitude == pytest.approx(coord.latitude, abs=1e-9)
        assert back.longitude == pytest.approx(coord.longitude, abs=1e-9)

    def test_local_distance_close_to_haversine(self):
        proj = LocalProjection(STUTTGART)
        a = GeoCoordinate(48.77, 9.18)
        b = GeoCoordinate(48.79, 9.21)
        local = proj.to_local(a).distance_to(proj.to_local(b))
        geodesic = haversine_distance(a, b)
        # City scale: projection error far below sensor accuracy.
        assert local == pytest.approx(geodesic, rel=0.002)

    @given(lat, lon)
    def test_roundtrip_property(self, latitude, longitude):
        anchor = GeoCoordinate(latitude, longitude)
        proj = LocalProjection(anchor)
        nearby = Point(500.0, -250.0)
        back = proj.to_local(proj.to_geo(nearby))
        assert back.x == pytest.approx(nearby.x, abs=1e-3)
        assert back.y == pytest.approx(nearby.y, abs=1e-3)
