"""Unit and property tests for axis-aligned rectangles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import Point, Rect

coord = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Rect(1, 0, 0, 1)

    def test_point_rect_allowed(self):
        r = Rect(1, 1, 1, 1)
        assert r.area == 0.0

    def test_from_points_any_order(self):
        r = Rect.from_points(Point(5, 1), Point(2, 8))
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (2, 1, 5, 8)

    def test_from_center(self):
        r = Rect.from_center(Point(10, 10), 4, 6)
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (8, 7, 12, 13)

    def test_bounding(self):
        r = Rect.bounding([Point(0, 5), Point(3, -1), Point(2, 2)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (0, -1, 3, 5)

    def test_bounding_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.bounding([])


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(10, 10))
        assert not r.contains_point(Point(10.001, 5))

    def test_halfopen_excludes_max_edge(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point_halfopen(Point(0, 0))
        assert not r.contains_point_halfopen(Point(10, 5))
        assert not r.contains_point_halfopen(Point(5, 10))

    def test_halfopen_partitions_siblings(self):
        parent = Rect(0, 0, 100, 100)
        quads = parent.quadrants()
        boundary_point = Point(50, 50)
        owners = [q for q in quads if q.contains_point_halfopen(boundary_point)]
        assert len(owners) == 1

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 8, 8))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 11, 8))


class TestOperations:
    def test_intersection(self):
        overlap = Rect(0, 0, 10, 10).intersection(Rect(5, 5, 15, 15))
        assert overlap == Rect(5, 5, 10, 10)

    def test_intersection_disjoint_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_intersection_area(self):
        assert Rect(0, 0, 10, 10).intersection_area(Rect(5, 5, 15, 15)) == 25.0

    def test_union_bounds(self):
        u = Rect(0, 0, 1, 1).union_bounds(Rect(5, 5, 6, 6))
        assert u == Rect(0, 0, 6, 6)

    def test_enlarged(self):
        e = Rect(0, 0, 10, 10).enlarged(5)
        assert e == Rect(-5, -5, 15, 15)

    def test_enlarged_negative_shrinks(self):
        assert Rect(0, 0, 10, 10).enlarged(-2) == Rect(2, 2, 8, 8)

    def test_quadrants_tile_parent(self):
        parent = Rect(0, 0, 8, 4)
        quads = parent.quadrants()
        assert sum(q.area for q in quads) == pytest.approx(parent.area)
        assert all(parent.contains_rect(q) for q in quads)

    def test_grid_tiles_parent(self):
        parent = Rect(0, 0, 9, 6)
        cells = parent.grid(3, 2)
        assert len(cells) == 6
        assert sum(c.area for c in cells) == pytest.approx(parent.area)

    def test_grid_invalid_raises(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).grid(0, 2)

    def test_distance_to_point_inside_zero(self):
        assert Rect(0, 0, 10, 10).distance_to_point(Point(5, 5)) == 0.0

    def test_distance_to_point_outside(self):
        assert Rect(0, 0, 10, 10).distance_to_point(Point(13, 14)) == pytest.approx(5.0)

    def test_max_distance_to_point(self):
        assert Rect(0, 0, 3, 4).max_distance_to_point(Point(0, 0)) == pytest.approx(5.0)


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_commutative(self, a, b):
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))

    @given(rects(), rects())
    def test_intersection_bounded_by_operands(self, a, b):
        area = a.intersection_area(b)
        assert area <= min(a.area, b.area) + 1e-6

    @given(rects())
    def test_quadrants_are_disjoint_halfopen(self, r):
        quads = r.quadrants()
        for i, qa in enumerate(quads):
            for qb in quads[i + 1 :]:
                inter = qa.intersection(qb)
                assert inter is None or inter.area == pytest.approx(0.0, abs=1e-6)

    @given(rects(), st.floats(min_value=0, max_value=100))
    def test_enlarge_superset(self, r, margin):
        e = r.enlarged(margin)
        assert e.contains_rect(r)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union_bounds(b)
        assert u.contains_rect(a) and u.contains_rect(b)
