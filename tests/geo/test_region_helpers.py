"""Tests for the Region dispatch helpers in repro.geo."""

import pytest

from repro.geo import (
    Point,
    Polygon,
    Rect,
    region_area,
    region_bounds,
    region_contains_point,
    region_contains_rect,
    region_intersection_area_with_rect,
    region_intersects_rect,
)

RECT = Rect(0, 0, 100, 100)
POLY = Polygon([Point(0, 0), Point(100, 0), Point(0, 100)])  # right triangle


class TestRegionHelpers:
    def test_area(self):
        assert region_area(RECT) == 10_000.0
        assert region_area(POLY) == pytest.approx(5_000.0)

    def test_bounds(self):
        assert region_bounds(RECT) == RECT
        assert region_bounds(POLY) == Rect(0, 0, 100, 100)

    def test_contains_point(self):
        assert region_contains_point(RECT, Point(50, 50))
        assert region_contains_point(POLY, Point(10, 10))
        assert not region_contains_point(POLY, Point(90, 90))

    def test_intersects_rect(self):
        probe = Rect(80, 80, 120, 120)
        assert region_intersects_rect(RECT, probe)
        assert not region_intersects_rect(POLY, probe)
        assert region_intersects_rect(POLY, Rect(0, 0, 10, 10))

    def test_contains_rect(self):
        assert region_contains_rect(RECT, Rect(10, 10, 90, 90))
        assert region_contains_rect(POLY, Rect(5, 5, 20, 20))
        assert not region_contains_rect(POLY, Rect(60, 60, 90, 90))

    def test_intersection_area_with_rect(self):
        probe = Rect(0, 0, 50, 50)
        assert region_intersection_area_with_rect(RECT, probe) == 2_500.0
        # The triangle fully contains the 50x50 corner square.
        assert region_intersection_area_with_rect(POLY, probe) == pytest.approx(2_500.0)
        # Half-covered square on the hypotenuse.
        mid = Rect(25, 25, 75, 75)
        assert region_intersection_area_with_rect(POLY, mid) == pytest.approx(1_250.0)
