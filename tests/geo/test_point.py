"""Unit and property tests for points and vectors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import Point, Vector, distance

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, finite, finite)


class TestPoint:
    def test_distance_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_zero_to_self(self):
        p = Point(12.5, -7.25)
        assert p.distance_to(p) == 0.0

    def test_squared_distance_matches_distance(self):
        a, b = Point(1, 2), Point(4, 6)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(10, 4)) == Point(5, 2)

    def test_subtraction_yields_vector(self):
        v = Point(5, 7) - Point(2, 3)
        assert isinstance(v, Vector)
        assert (v.dx, v.dy) == (3, 4)

    def test_point_plus_vector(self):
        assert Point(1, 1) + Vector(2, 3) == Point(3, 4)

    def test_iteration_unpacks(self):
        x, y = Point(8, 9)
        assert (x, y) == (8, 9)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5  # type: ignore[misc]

    def test_module_level_distance(self):
        assert distance(Point(0, 0), Point(0, 9)) == 9.0


class TestVector:
    def test_length(self):
        assert Vector(3, 4).length == pytest.approx(5.0)

    def test_scaled(self):
        v = Vector(1, -2).scaled(3)
        assert (v.dx, v.dy) == (3, -6)

    def test_normalized(self):
        n = Vector(0, 5).normalized()
        assert (n.dx, n.dy) == pytest.approx((0.0, 1.0))

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vector(0, 0).normalized()

    def test_dot_orthogonal(self):
        assert Vector(1, 0).dot(Vector(0, 7)) == 0.0

    def test_cross_sign(self):
        assert Vector(1, 0).cross(Vector(0, 1)) == 1.0
        assert Vector(0, 1).cross(Vector(1, 0)) == -1.0

    def test_rotated_quarter_turn(self):
        r = Vector(1, 0).rotated(math.pi / 2)
        assert (r.dx, r.dy) == pytest.approx((0.0, 1.0), abs=1e-12)

    def test_addition_and_negation(self):
        v = Vector(1, 2) + (-Vector(3, 4))
        assert (v.dx, v.dy) == (-2, -2)


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points)
    def test_distance_non_negative(self, a, b):
        assert a.distance_to(b) >= 0.0

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        m = a.midpoint(b)
        assert m.distance_to(a) == pytest.approx(m.distance_to(b), abs=1e-6)
