"""Unit and property tests for circles and exact intersection areas."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import Circle, Point, Polygon, Rect, circle_circle_intersection_area


class TestBasics:
    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), -1.0)

    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area == pytest.approx(4.0 * math.pi)

    def test_bounds(self):
        b = Circle(Point(5, 5), 2.0).bounds
        assert b == Rect(3, 3, 7, 7)

    def test_contains_point(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.contains_point(Point(3, 4))
        assert not c.contains_point(Point(3.1, 4.1))

    def test_intersects_rect(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.intersects_rect(Rect(4, 0, 10, 10))
        assert not c.intersects_rect(Rect(4, 4, 10, 10))

    def test_inside_rect(self):
        assert Circle(Point(5, 5), 2.0).inside_rect(Rect(0, 0, 10, 10))
        assert not Circle(Point(1, 5), 2.0).inside_rect(Rect(0, 0, 10, 10))


class TestCircleRectArea:
    def test_disjoint_zero(self):
        assert Circle(Point(0, 0), 1.0).intersection_area_with_rect(Rect(5, 5, 6, 6)) == 0.0

    def test_circle_inside_rect_full(self):
        c = Circle(Point(5, 5), 1.0)
        assert c.intersection_area_with_rect(Rect(0, 0, 10, 10)) == pytest.approx(c.area)

    def test_rect_inside_circle_full(self):
        c = Circle(Point(0, 0), 100.0)
        r = Rect(-1, -1, 1, 1)
        assert c.intersection_area_with_rect(r) == pytest.approx(r.area)

    def test_half_disk(self):
        # Circle centered on a rect edge: exactly half the disk overlaps.
        c = Circle(Point(0, 5), 2.0)
        r = Rect(0, 0, 10, 10)
        assert c.intersection_area_with_rect(r) == pytest.approx(c.area / 2.0)

    def test_quarter_disk(self):
        c = Circle(Point(0, 0), 2.0)
        r = Rect(0, 0, 10, 10)
        assert c.intersection_area_with_rect(r) == pytest.approx(c.area / 4.0)

    def test_zero_radius(self):
        assert Circle(Point(5, 5), 0.0).intersection_area_with_rect(Rect(0, 0, 10, 10)) == 0.0

    def test_circular_segment(self):
        # Rect covers the half-plane x <= d through the circle; the overlap
        # is circle area minus a circular segment.
        r_circ = 5.0
        d = 3.0
        c = Circle(Point(0, 0), r_circ)
        rect = Rect(-100, -100, d, 100)
        theta = 2.0 * math.acos(d / r_circ)
        segment = 0.5 * r_circ * r_circ * (theta - math.sin(theta))
        assert c.intersection_area_with_rect(rect) == pytest.approx(c.area - segment)


class TestCirclePolygonArea:
    def test_polygon_matches_rect_path(self):
        c = Circle(Point(3, 3), 4.0)
        rect = Rect(0, 0, 10, 10)
        poly = Polygon.from_rect(rect)
        assert c.intersection_area_with_polygon(poly) == pytest.approx(
            c.intersection_area_with_rect(rect)
        )

    def test_triangle_fully_inside_circle(self):
        tri = Polygon([Point(-1, -1), Point(1, -1), Point(0, 1)])
        c = Circle(Point(0, 0), 50.0)
        assert c.intersection_area_with_polygon(tri) == pytest.approx(tri.area)

    def test_concave_polygon(self):
        l_shape = Polygon(
            [Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2), Point(2, 4), Point(0, 4)]
        )
        big = Circle(Point(2, 2), 100.0)
        assert big.intersection_area_with_polygon(l_shape) == pytest.approx(l_shape.area)

    def test_dispatch(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.intersection_area(Rect(-1, -1, 1, 1)) == pytest.approx(
            c.intersection_area(Polygon.from_rect(Rect(-1, -1, 1, 1)))
        )


class TestCircleCircle:
    def test_disjoint(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(10, 0), 1.0)
        assert circle_circle_intersection_area(a, b) == 0.0

    def test_contained(self):
        a = Circle(Point(0, 0), 5.0)
        b = Circle(Point(1, 0), 1.0)
        assert circle_circle_intersection_area(a, b) == pytest.approx(b.area)

    def test_identical(self):
        a = Circle(Point(0, 0), 3.0)
        assert circle_circle_intersection_area(a, a) == pytest.approx(a.area)

    def test_symmetric_lens(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(1, 0), 1.0)
        # Standard lens area for unit circles at distance 1.
        expected = 2.0 * (math.pi / 3.0) - math.sin(math.pi / 3.0) * 2.0 * 0.5
        lens = 2.0 * ((math.pi / 3.0) - 0.5 * math.sin(2.0 * math.pi / 3.0))
        assert circle_circle_intersection_area(a, b) == pytest.approx(lens)
        assert expected > 0  # sanity on the analytic form above


class TestMonteCarloAgreement:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_circle_rect_matches_monte_carlo(self, seed):
        rng = random.Random(seed)
        c = Circle(Point(rng.uniform(-10, 10), rng.uniform(-10, 10)), rng.uniform(0.5, 15))
        rect = Rect.from_center(
            Point(rng.uniform(-10, 10), rng.uniform(-10, 10)),
            rng.uniform(1, 30),
            rng.uniform(1, 30),
        )
        exact = c.intersection_area_with_rect(rect)
        hits = 0
        samples = 5000
        for _ in range(samples):
            p = Point(rng.uniform(rect.min_x, rect.max_x), rng.uniform(rect.min_y, rect.max_y))
            if c.contains_point(p):
                hits += 1
        estimate = rect.area * hits / samples
        tolerance = 4.0 * rect.area / math.sqrt(samples) + 1e-6
        assert abs(exact - estimate) <= tolerance

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_circle_polygon_bounded(self, seed):
        rng = random.Random(seed)
        c = Circle(Point(rng.uniform(-5, 5), rng.uniform(-5, 5)), rng.uniform(0.5, 10))
        poly = Polygon.regular(
            Point(rng.uniform(-5, 5), rng.uniform(-5, 5)),
            rng.uniform(1, 10),
            rng.randint(3, 9),
        )
        area = c.intersection_area_with_polygon(poly)
        assert -1e-9 <= area <= min(c.area, poly.area) + 1e-6
