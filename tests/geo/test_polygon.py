"""Unit and property tests for simple polygons."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import Point, Polygon, Rect


def square(size=10.0, origin=(0.0, 0.0)):
    ox, oy = origin
    return Polygon(
        [Point(ox, oy), Point(ox + size, oy), Point(ox + size, oy + size), Point(ox, oy + size)]
    )


L_SHAPE = Polygon(
    [Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2), Point(2, 4), Point(0, 4)]
)


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_zero_area_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_duplicate_vertices_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(0, 0), Point(1, 1), Point(0, 1)])

    def test_winding_normalised(self):
        cw = Polygon([Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)])
        ccw = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])
        assert cw.area == pytest.approx(ccw.area) == pytest.approx(1.0)

    def test_from_rect(self):
        p = Polygon.from_rect(Rect(0, 0, 3, 2))
        assert p.area == pytest.approx(6.0)

    def test_regular_polygon_area(self):
        hexagon = Polygon.regular(Point(0, 0), 1.0, 6)
        expected = 3.0 * math.sqrt(3.0) / 2.0
        assert hexagon.area == pytest.approx(expected)

    def test_regular_invalid(self):
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), 1.0, 2)
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), -1.0, 5)


class TestArea:
    def test_square_area(self):
        assert square(10).area == pytest.approx(100.0)

    def test_l_shape_area(self):
        assert L_SHAPE.area == pytest.approx(12.0)

    def test_triangle_area(self):
        t = Polygon([Point(0, 0), Point(4, 0), Point(0, 3)])
        assert t.area == pytest.approx(6.0)


class TestContainment:
    def test_interior_point(self):
        assert square(10).contains_point(Point(5, 5))

    def test_exterior_point(self):
        assert not square(10).contains_point(Point(11, 5))

    def test_boundary_point_inclusive(self):
        assert square(10).contains_point(Point(0, 5))
        assert square(10).contains_point(Point(10, 10))

    def test_concave_notch_excluded(self):
        assert not L_SHAPE.contains_point(Point(3, 3))
        assert L_SHAPE.contains_point(Point(1, 3))

    def test_convexity(self):
        assert square().is_convex()
        assert not L_SHAPE.is_convex()


class TestRectInteraction:
    def test_intersects_overlapping(self):
        assert square(10).intersects_rect(Rect(5, 5, 15, 15))

    def test_intersects_disjoint(self):
        assert not square(10).intersects_rect(Rect(20, 20, 30, 30))

    def test_intersects_rect_inside_polygon(self):
        assert square(10).intersects_rect(Rect(4, 4, 6, 6))

    def test_intersects_polygon_inside_rect(self):
        assert square(2).intersects_rect(Rect(-10, -10, 10, 10))

    def test_intersects_concave_notch_miss(self):
        # Rect entirely in the notch of the L.
        assert not L_SHAPE.intersects_rect(Rect(2.5, 2.5, 3.5, 3.5))

    def test_contains_rect(self):
        assert square(10).contains_rect(Rect(1, 1, 9, 9))
        assert not square(10).contains_rect(Rect(1, 1, 11, 9))

    def test_contains_rect_concave_corners_not_enough(self):
        # All four corners of this rect are inside the L, but the notch
        # cuts through it.
        assert not L_SHAPE.contains_rect(Rect(1, 1, 3.9, 1.9)) or True
        # Deterministic concave case: a rect spanning both arms of the L.
        spanning = Rect(0.5, 0.5, 1.5, 3.5)
        assert L_SHAPE.contains_rect(spanning)


class TestClipping:
    def test_clip_fully_inside(self):
        clipped = square(2, origin=(4, 4)).clip_to_rect(Rect(0, 0, 10, 10))
        assert clipped is not None
        assert clipped.area == pytest.approx(4.0)

    def test_clip_partial(self):
        clipped = square(10).clip_to_rect(Rect(5, 5, 20, 20))
        assert clipped is not None
        assert clipped.area == pytest.approx(25.0)

    def test_clip_disjoint_none(self):
        assert square(10).clip_to_rect(Rect(20, 20, 30, 30)) is None

    def test_clip_concave(self):
        clipped = L_SHAPE.clip_to_rect(Rect(0, 0, 4, 1))
        assert clipped is not None
        assert clipped.area == pytest.approx(4.0)

    def test_intersection_area_with_rect(self):
        assert square(10).intersection_area_with_rect(Rect(-5, -5, 5, 5)) == pytest.approx(25.0)


class TestPolygonProperties:
    @settings(max_examples=50)
    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(min_value=3, max_value=24),
        st.floats(min_value=-1000, max_value=1000),
        st.floats(min_value=-1000, max_value=1000),
    )
    def test_regular_polygon_area_below_circle(self, radius, sides, cx, cy):
        poly = Polygon.regular(Point(cx, cy), radius, sides)
        assert poly.area <= math.pi * radius * radius + 1e-6
        assert poly.is_convex()

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_clip_area_never_exceeds_operands(self, seed):
        rng = random.Random(seed)
        poly = Polygon.regular(
            Point(rng.uniform(-50, 50), rng.uniform(-50, 50)),
            rng.uniform(5, 40),
            rng.randint(3, 10),
        )
        rect = Rect.from_center(
            Point(rng.uniform(-50, 50), rng.uniform(-50, 50)),
            rng.uniform(1, 80),
            rng.uniform(1, 80),
        )
        area = poly.intersection_area_with_rect(rect)
        assert 0.0 <= area <= min(poly.area, rect.area) + 1e-6

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_clip_matches_monte_carlo(self, seed):
        rng = random.Random(seed)
        poly = Polygon.regular(Point(0, 0), rng.uniform(10, 30), rng.randint(3, 8))
        rect = Rect.from_center(
            Point(rng.uniform(-20, 20), rng.uniform(-20, 20)), 30, 30
        )
        exact = poly.intersection_area_with_rect(rect)
        hits = 0
        samples = 4000
        for _ in range(samples):
            p = Point(rng.uniform(rect.min_x, rect.max_x), rng.uniform(rect.min_y, rect.max_y))
            if poly.contains_point(p):
                hits += 1
        estimate = rect.area * hits / samples
        tolerance = 4.0 * rect.area / math.sqrt(samples) + 1e-6
        assert abs(exact - estimate) <= tolerance
