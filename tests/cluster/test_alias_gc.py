"""Tests for retired-server forwarding-alias garbage collection.

A merged-away leaf keeps forwarding as a retirement alias; the
:class:`~repro.cluster.LoadMonitor` drops an alias once it has seen no
traffic for ``gc_retired_after`` consecutive sweeps, bounding the
endpoint table under long split/merge churn.  Stragglers addressed to a
dropped alias become dead letters and recover through the batched lane's
envelope retry via the hierarchy root.
"""

import pytest

from repro.cluster import LoadMonitor, MergePlan
from repro.core import messages as m
from repro.core.caching import CacheConfig
from repro.model import SightingRecord
from repro.sim.scenario import table2_service

from tests.cluster.test_migration import Reporter, force_split


def merged_service(object_count=150, seed=31, cache_config=None):
    svc, homes = table2_service(
        object_count=object_count, seed=seed, cache_config=cache_config
    )
    executor, split_report = force_split(svc)
    executor.execute(MergePlan(parent_id="root.0", children=split_report.spawned))
    return svc, homes, split_report.spawned


class TestConfig:
    def test_gc_retired_after_must_be_positive(self):
        with pytest.raises(ValueError):
            LoadMonitor(gc_retired_after=0)

    def test_gc_disabled_by_default(self):
        svc, homes, retired = merged_service()
        monitor = LoadMonitor()
        for i in range(8):
            monitor.sample(svc, float(i + 1))
        assert set(retired) <= set(svc.retired_servers)


class TestQuietAliasCollection:
    def test_quiet_aliases_dropped_after_n_sweeps(self):
        svc, homes, retired = merged_service()
        monitor = LoadMonitor(gc_retired_after=2)
        assert set(retired) <= set(svc.retired_servers)
        # Sweep 1 baselines the counters; two idle sweeps then collect.
        for i in range(3):
            monitor.sample(svc, float(i + 1))
        for alias in retired:
            assert alias not in svc.retired_servers
            assert alias not in svc.network.addresses()

    def test_traffic_keeps_alias_alive(self):
        svc, homes, retired = merged_service()
        monitor = LoadMonitor(gc_retired_after=2)
        busy, quiet = retired[0], retired[1]
        reporter = Reporter()
        svc.network.join(reporter)
        oid = next(oid for oid, home in homes.items() if home == "root.0")
        area = svc.hierarchy.config("root.0").area
        for i in range(3):
            # The busy alias sees a forwarded update between every sweep.
            res = svc.run(reporter.send_update(busy, oid, area.center))
            assert res.ok
            monitor.sample(svc, float(i + 1))
        assert busy in svc.retired_servers
        assert quiet not in svc.retired_servers

    def test_straggler_to_dropped_alias_is_dead_letter(self):
        svc, homes, retired = merged_service()
        monitor = LoadMonitor(gc_retired_after=1)
        for i in range(2):
            monitor.sample(svc, float(i + 1))
        assert retired[0] not in svc.network.addresses()
        before = svc.network.stats.dead_letters
        oid = next(iter(homes))
        reporter = Reporter()
        svc.network.join(reporter)
        reporter.send(
            retired[0],
            m.UpdateReq(
                request_id=reporter.next_request_id(),
                reply_to=reporter.address,
                sighting=SightingRecord(oid, 0.0, svc.hierarchy.root_area().center, 10.0),
            ),
        )
        svc.settle()
        assert svc.network.stats.dead_letters == before + 1


class TestCachePurge:
    def test_gc_purges_stale_area_caches(self):
        """A live leaf whose §6.5 area cache points at the dropped alias
        must forget it with the GC — a cached direct handover dispatch to
        the vanished address would be an unrecoverable dead letter."""
        svc, homes, retired = merged_service(
            cache_config=CacheConfig.all_enabled()
        )
        stale = retired[0]
        child_area = svc.retired_servers[stale].config.area
        live_leaf = "root.1"
        # Learned from a handover response before the merge + GC.
        svc.servers[live_leaf].caches.note_leaf_area(stale, child_area)
        monitor = LoadMonitor(gc_retired_after=1)
        for i in range(2):
            monitor.sample(svc, float(i + 1))
        assert stale not in svc.retired_servers
        center = child_area.center
        assert (
            svc.servers[live_leaf].caches.leaf_for_point(center.x, center.y)
            is None
        )
        # An object agented at the live leaf crossing into the old child
        # area now routes through the hierarchy instead of dead-lettering.
        oid = next(o for o, h in homes.items() if h == live_leaf)
        reporter = Reporter()
        svc.network.join(reporter)
        res = svc.run(reporter.send_update(live_leaf, oid, center))
        assert res.ok and res.agent == "root.0"
        svc.check_consistency()


class TestDropRetired:
    def test_drop_retired_returns_server_once(self):
        svc, homes, retired = merged_service()
        server = svc.drop_retired(retired[0])
        assert server is not None and server.retired
        assert svc.drop_retired(retired[0]) is None
        assert retired[0] not in svc.network.addresses()
