"""End-to-end tests for live split/merge migration."""

from repro.cluster import (
    MergePlan,
    MigrationExecutor,
    PlannerConfig,
    RebalancePlanner,
    SplitPlan,
)
from repro.core import messages as m
from repro.geo import Point, Rect
from repro.model import RangeQuery, SightingRecord
from repro.runtime.base import Endpoint
from repro.sim.scenario import table2_service


def force_split(svc, leaf_id="root.0"):
    """Split one leaf via the planner's cut selection."""
    planner = RebalancePlanner(PlannerConfig(split_load=1.0))
    executor = MigrationExecutor(svc)
    plans = planner.plan(svc, {leaf_id: 100.0})
    assert len(plans) == 1 and isinstance(plans[0], SplitPlan)
    report = executor.execute(plans[0])
    return executor, report


class TestSplit:
    def test_objects_and_paths_survive(self):
        svc, homes = table2_service(object_count=800, seed=3)
        before = svc.total_tracked()
        _, report = force_split(svc)
        assert svc.total_tracked() == before
        assert report.moved == sum(1 for h in homes.values() if h == "root.0")
        assert set(report.new_homes.values()) == set(report.spawned)
        svc.hierarchy.validate()
        svc.check_consistency()

    def test_split_leaf_becomes_interior_with_forward_refs(self):
        svc, homes = table2_service(object_count=300, seed=1)
        _, report = force_split(svc)
        parent = svc.servers["root.0"]
        assert not parent.is_leaf
        assert parent.store is None
        for oid, child in report.new_homes.items():
            assert parent.visitors.forward_ref(oid) == child

    def test_pos_query_reaches_migrated_objects(self):
        svc, homes = table2_service(object_count=300, seed=2)
        _, report = force_split(svc)
        oid = next(iter(report.new_homes))
        for entry in svc.hierarchy.leaf_ids():
            descriptor = svc.pos_query(oid, entry_server=entry)
            assert descriptor is not None

    def test_stale_agent_update_is_forwarded_and_repoints(self):
        svc, homes = table2_service(object_count=300, seed=4)
        _, report = force_split(svc)
        oid = next(iter(report.new_homes))
        reporter = Reporter()
        svc.network.join(reporter)
        pos = svc.servers[report.new_homes[oid]].config.area.center
        # The device still believes the split leaf is its agent.
        res = svc.run(reporter.send_update("root.0", oid, pos))
        assert res.ok
        assert res.agent == report.new_homes[oid]

    def test_deregister_forwarded_through_split_leaf(self):
        svc, homes = table2_service(object_count=300, seed=5)
        _, report = force_split(svc)
        oid = next(iter(report.new_homes))
        reporter = Reporter()
        svc.network.join(reporter)
        res = svc.run(
            reporter.request(
                "root.0",
                m.DeregisterReq(
                    request_id=reporter.next_request_id(),
                    reply_to=reporter.address,
                    object_id=oid,
                ),
            )
        )
        assert res.ok
        assert svc.total_tracked() == 299

    def test_range_query_spans_new_children(self):
        svc, homes = table2_service(object_count=500, seed=6)
        force_split(svc)
        area = svc.hierarchy.root_area()
        answer = svc.range_query(
            area, req_acc=100.0, req_overlap=0.5,
            entry_server=svc.hierarchy.leaf_ids()[0],
        )
        assert len(answer.entries) == 500


class TestMerge:
    def _split_and_merge(self, svc):
        executor, report = force_split(svc)
        merge = MergePlan(parent_id="root.0", children=report.spawned)
        return executor, executor.execute(merge), report

    def test_round_trip_preserves_everything(self):
        svc, homes = table2_service(object_count=600, seed=7)
        _, merge_report, split_report = self._split_and_merge(svc)
        assert merge_report.moved == split_report.moved
        assert svc.total_tracked() == 600
        svc.hierarchy.validate()
        svc.check_consistency()
        parent = svc.servers["root.0"]
        assert parent.is_leaf
        assert len(parent.store.sightings) == split_report.moved

    def test_retired_children_forward_updates(self):
        svc, homes = table2_service(object_count=400, seed=8)
        _, merge_report, split_report = self._split_and_merge(svc)
        retired_id = split_report.spawned[0]
        assert retired_id in svc.retired_servers
        assert svc.retired_servers[retired_id].retired
        oid = next(iter(merge_report.new_homes))
        reporter = Reporter()
        svc.network.join(reporter)
        pos = svc.hierarchy.config("root.0").area.center
        # The device still addresses the merged-away child.
        res = svc.run(reporter.send_update(retired_id, oid, pos))
        assert res.ok
        assert res.agent == "root.0"

    def test_retired_children_forward_queries(self):
        svc, homes = table2_service(object_count=400, seed=9)
        _, merge_report, split_report = self._split_and_merge(svc)
        retired_id = split_report.spawned[1]
        oid = next(iter(merge_report.new_homes))
        # A client whose entry server was merged away still gets answers.
        descriptor = svc.pos_query(oid, entry_server=retired_id)
        assert descriptor is not None

    def test_resplit_after_merge_uses_fresh_ids(self):
        svc, homes = table2_service(object_count=600, seed=10)
        executor, merge_report, split_report = self._split_and_merge(svc)
        planner = RebalancePlanner(PlannerConfig(split_load=1.0))
        plans = planner.plan(svc, {"root.0": 100.0})
        assert len(plans) == 1
        new_ids = {cid for cid, _ in plans[0].children}
        assert new_ids.isdisjoint(set(split_report.spawned))
        executor.execute(plans[0])
        svc.hierarchy.validate()
        svc.check_consistency()
        assert svc.total_tracked() == 600


class TestInteriorEntryFanOut:
    def test_split_entry_server_still_evaluates_range(self):
        # A server reference held from before the split (e.g. an event
        # subscription) keeps answering range queries: the fan-out routes
        # through its own children instead of deadlocking.
        svc, homes = table2_service(object_count=400, seed=12)
        server = svc.servers["root.0"]
        force_split(svc)
        assert not server.is_leaf
        query = RangeQuery(Rect(0, 0, 1500, 1500), req_acc=100.0, req_overlap=0.5)
        entries = svc.run(server.evaluate_range(query))
        assert len(entries) == 400
        batched = svc.run(server.evaluate_range_many([query, query]))
        assert [len(r) for r in batched] == [400, 400]

    def test_split_entry_server_still_evaluates_local_range(self):
        svc, homes = table2_service(object_count=400, seed=13)
        server = svc.servers["root.0"]
        _, report = force_split(svc)
        area = svc.hierarchy.config(report.spawned[0]).area
        query = RangeQuery(area, req_acc=100.0, req_overlap=0.5)
        entries = svc.run(server.evaluate_range(query))
        expected = len(svc.servers[report.spawned[0]].store.range_query(query))
        assert len(entries) >= expected > 0


class TestMergedLeafSoftState:
    def test_merge_target_starts_soft_state_sweep(self):
        # An originally-interior server that becomes a leaf by merging
        # must start expiring lapsed sightings like any other leaf.
        from repro.core import LocationService, build_table2_hierarchy
        from repro.sim.elastic import _populate

        svc = LocationService(
            build_table2_hierarchy(1500.0), sighting_ttl=50.0, sweep_interval=10.0
        )
        placements = [
            (f"o{i}", Point(10.0 + i * 30.0, 10.0 + i * 30.0)) for i in range(20)
        ]
        _populate(svc, placements)
        executor, report = force_split(svc)
        executor.execute(MergePlan(parent_id="root.0", children=report.spawned))
        assert svc.servers["root.0"].is_leaf
        assert svc.total_tracked() == 20
        # No further updates: every sighting lapses within one TTL+sweep.
        svc.settle(max_time=100.0)
        assert len(svc.servers["root.0"].store.sightings) == 0


class TestCoverageDedupe:
    def test_duplicate_origin_coverage_counted_once(self):
        from repro.core.server import _BatchCollector, _Collector

        class _FakeFuture:
            def done(self):
                return False

            def set_result(self, value):
                pass

        collector = _Collector(_FakeFuture(), target=100.0)
        collector.add([("a", None)], 60.0, origin="leaf-1")
        collector.add([("b", None)], 60.0, origin="leaf-1")  # forwarded dup
        assert collector.covered == 60.0
        assert not collector.complete
        assert set(collector.entries) == {"a", "b"}  # entries still merge
        collector.add([], 40.0, origin="leaf-2")
        assert collector.complete

        batch = _BatchCollector(_FakeFuture(), targets=[100.0, 50.0])
        batch.add(0, [], 80.0, origin="leaf-1")
        batch.add(0, [], 80.0, origin="leaf-1")
        batch.add(1, [], 80.0, origin="leaf-1")  # same origin, other item
        assert batch.covered == [80.0, 80.0]
        assert not batch.item_complete(0)
        assert batch.item_complete(1)


class TestRecursiveSplit:
    def test_split_of_a_split_child(self):
        svc, homes = table2_service(object_count=1200, seed=11)
        executor, report = force_split(svc)
        hot_child = report.spawned[0]
        planner = RebalancePlanner(PlannerConfig(split_load=1.0))
        plans = planner.plan(svc, {hot_child: 100.0})
        assert plans and isinstance(plans[0], SplitPlan)
        executor.execute(plans[0])
        svc.hierarchy.validate()
        svc.check_consistency()
        assert svc.total_tracked() == 1200
        assert svc.hierarchy.height() == 4  # root → quadrant → half → quarter


class Reporter(Endpoint):
    """Minimal device stand-in for protocol-level assertions."""

    _counter = 0

    def __init__(self):
        type(self)._counter += 1
        super().__init__(f"test-reporter-{type(self)._counter}")

    async def send_update(self, agent: str, oid: str, pos: Point) -> m.UpdateRes:
        res = await self.request(
            agent,
            m.UpdateReq(
                request_id=self.next_request_id(),
                reply_to=self.address,
                sighting=SightingRecord(oid, 0.0, pos, 10.0),
            ),
        )
        assert isinstance(res, m.UpdateRes)
        return res
