"""Property-style tests: hierarchy invariants under random rebalancing.

Random sequences of splits and merges are applied to a populated
service; after every step the Section-4 structural requirements must
hold (children tile their parent, siblings are disjoint — both enforced
by ``Hierarchy.validate``), half-open routing must assign every probe
point to exactly one live leaf that contains it, no sighting may be
lost, and every forwarding path must stay intact.
"""

import random

import pytest

from repro.cluster import MergePlan, MigrationExecutor, PlannerConfig, RebalancePlanner
from repro.geo import Point
from repro.sim.scenario import table2_service

OBJECTS = 500


def random_split(svc, planner, rng):
    """A planner-built split plan for a random eligible leaf, or None."""
    leaves = svc.hierarchy.leaf_ids()
    rng.shuffle(leaves)
    for leaf_id in leaves:
        plans = planner.plan(svc, {leaf_id: 1e9})
        if plans:
            return plans[0]
    return None


def random_merge(svc, rng):
    """A merge plan for a random all-leaf sibling set, or None."""
    h = svc.hierarchy
    candidates = []
    for server_id in h.server_ids():
        node = h.config(server_id)
        if node.is_leaf or node.is_root:
            continue
        child_ids = [ref.server_id for ref in node.children]
        if all(h.config(cid).is_leaf for cid in child_ids):
            candidates.append(MergePlan(parent_id=server_id, children=tuple(child_ids)))
    return rng.choice(candidates) if candidates else None


def assert_invariants(svc, probe_rng):
    svc.hierarchy.validate()  # children tile parent; siblings disjoint
    svc.check_consistency()  # forwarding paths intact, one agent each
    assert svc.total_tracked() == OBJECTS  # zero lost sightings
    root = svc.hierarchy.root_area()
    for _ in range(25):
        p = Point(
            probe_rng.uniform(root.min_x, root.max_x),
            probe_rng.uniform(root.min_y, root.max_y),
        )
        leaf_id = svc.hierarchy.leaf_for_point(p)
        config = svc.hierarchy.config(leaf_id)
        assert config.is_leaf
        assert config.contains(p)
        # Half-open routing: no *other* leaf may claim the point.
        claimants = [
            lid
            for lid in svc.hierarchy.leaf_ids()
            if svc.hierarchy.config(lid).area.contains_point_halfopen(p)
        ]
        assert len(claimants) <= 1
        if claimants:
            assert claimants == [leaf_id]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_rebalance_sequences(seed):
    svc, homes = table2_service(object_count=OBJECTS, seed=seed)
    planner = RebalancePlanner(
        PlannerConfig(split_load=1.0, min_split_objects=4, merge_cooldown=0.0)
    )
    executor = MigrationExecutor(svc)
    rng = random.Random(seed)
    probe_rng = random.Random(seed + 100)
    applied = 0
    for step in range(24):
        # Bias toward splits so the tree actually grows before merging.
        plan = None
        if rng.random() < 0.65:
            plan = random_split(svc, planner, rng)
        if plan is None:
            plan = random_merge(svc, rng)
        if plan is None:
            continue
        executor.execute(plan)
        applied += 1
        assert_invariants(svc, probe_rng)
    assert applied >= 10  # the sequence actually exercised rebalancing


def test_interleaved_split_merge_keeps_queries_exact(seed=7):
    """After any rebalance prefix, a full-area range query finds all."""
    svc, homes = table2_service(object_count=OBJECTS, seed=seed)
    planner = RebalancePlanner(
        PlannerConfig(split_load=1.0, min_split_objects=4, merge_cooldown=0.0)
    )
    executor = MigrationExecutor(svc)
    rng = random.Random(seed)
    for step in range(8):
        plan = random_split(svc, planner, rng) if step % 3 != 2 else random_merge(svc, rng)
        if plan is None:
            continue
        executor.execute(plan)
        entry = svc.hierarchy.leaf_ids()[step % len(svc.hierarchy.leaf_ids())]
        answer = svc.range_query(
            svc.hierarchy.root_area(),
            req_acc=100.0,
            req_overlap=0.5,
            entry_server=entry,
        )
        assert len(answer.entries) == OBJECTS
