"""Phased (copy → dual-write → cutover) migration under live traffic.

The zero-stall pipeline's correctness hinges on three mechanisms tested
here: the buffered dual-write mirror keeping staged stores exactly in
sync with every mutation the source serves during the window, the
topology epoch letting stale traffic and racing fan-out collectors heal
without a drained loop, and the §6.5 invalidation broadcast retargeting
cached dispatches at cutover.
"""

import pytest

from repro.cluster import (
    MergePlan,
    MigrationExecutor,
    PlannerConfig,
    RebalancePlanner,
    SplitPlan,
)
from repro.core import messages as m
from repro.core.caching import CacheConfig
from repro.errors import LocationServiceError
from repro.geo import Point
from repro.model import SightingRecord
from repro.sim.scenario import table2_service

from tests.cluster.test_migration import Reporter


def plan_split(svc, leaf_id="root.0"):
    planner = RebalancePlanner(PlannerConfig(split_load=1.0))
    plans = planner.plan(svc, {leaf_id: 100.0})
    assert len(plans) == 1 and isinstance(plans[0], SplitPlan)
    return plans[0]


class TestDualWriteWindow:
    def test_split_mirror_tracks_moves_crossings_and_departures(self):
        svc, homes = table2_service(object_count=400, seed=41)
        executor = MigrationExecutor(svc)
        plan = plan_split(svc)
        migration = executor.begin(plan)
        assert not migration.copy_done
        executor.step(migration)  # drain the snapshot copy
        assert migration.copy_done

        parent = svc.servers["root.0"]
        area = parent.config.area
        reporter = Reporter()
        svc.network.join(reporter)
        moved = [oid for oid, home in homes.items() if home == "root.0"][:6]
        # In-area moves during the window (one crosses the cut line:
        # jitter across the whole parent area guarantees both children
        # see traffic), one departure to another quadrant, one arrival.
        for i, oid in enumerate(moved[:4]):
            pos = Point(
                area.min_x + (i + 1) * area.width / 6.0,
                area.min_y + (i + 1) * area.height / 6.0,
            )
            res = svc.run(reporter.send_update("root.0", oid, pos))
            assert res.ok
        departer = moved[4]
        res = svc.run(reporter.send_update("root.0", departer, Point(1200.0, 1200.0)))
        assert res.ok and res.agent == "root.3"
        arriver = next(oid for oid, home in homes.items() if home == "root.3")
        res = svc.run(reporter.send_update("root.3", arriver, area.center))
        assert res.ok and res.agent == "root.0"

        report = executor.cutover(migration)
        assert report.dual_writes > 0
        assert departer not in report.new_homes
        assert arriver in report.new_homes
        svc.settle()
        svc.check_consistency()
        assert svc.total_tracked() == 400
        # Every moved object is served by the child covering its position.
        for oid in moved[:4]:
            assert svc.pos_query(oid) is not None

    def test_merge_mirror_handles_sibling_handover_race(self):
        svc, homes = table2_service(object_count=300, seed=42)
        executor = MigrationExecutor(svc)
        executor.execute(plan_split(svc))
        children = svc.hierarchy.config("root.0").children
        a, b = children[0].server_id, children[1].server_id
        migration = executor.begin(
            MergePlan(
                parent_id="root.0",
                children=tuple(ref.server_id for ref in children),
            )
        )
        executor.step(migration)
        # An object hands over from child a to child b mid-window: the
        # departure from a must not erase b's staged arrival.
        oid = next(iter(svc.servers[a].store.sightings.object_ids()))
        target = svc.servers[b].config.area.center
        reporter = Reporter()
        svc.network.join(reporter)
        res = svc.run(reporter.send_update(a, oid, target))
        assert res.ok and res.agent == b
        report = executor.cutover(migration)
        assert report.new_homes[oid] == "root.0"
        svc.settle()
        svc.check_consistency()
        assert svc.total_tracked() == 300

    def test_accuracy_change_supersedes_buffered_one(self):
        """acc change → update → acc change during the window: the flush
        must land the *latest* accuracy, not resurrect the first one
        buffered before the pending upsert existed."""
        svc, homes = table2_service(object_count=160, seed=52)
        executor = MigrationExecutor(svc)
        migration = executor.begin(plan_split(svc))
        executor.step(migration)
        oid = next(oid for oid, home in homes.items() if home == "root.0")
        source = svc.servers["root.0"]
        source.store.change_accuracy(oid, 50.0, 100.0)  # buffered in _acc
        reporter = Reporter()
        svc.network.join(reporter)
        res = svc.run(
            reporter.send_update("root.0", oid, source.config.area.center)
        )
        assert res.ok  # pending upsert now carries the 50.0 record
        source.store.change_accuracy(oid, 70.0, 100.0)  # must win at flush
        expected = source.store.offered_acc(oid)
        report = executor.cutover(migration)
        child = report.new_homes[oid]
        assert svc.servers[child].store.offered_acc(oid) == expected

    def test_chunked_copy_racing_mutations(self):
        svc, homes = table2_service(object_count=500, seed=43)
        executor = MigrationExecutor(svc)
        migration = executor.begin(plan_split(svc))
        reporter = Reporter()
        svc.network.join(reporter)
        area = svc.servers["root.0"].config.area
        in_parent = [oid for oid, home in homes.items() if home == "root.0"]
        # Interleave small copy chunks with mutations of objects whose
        # snapshot entries may or may not be staged yet.
        step = 0
        while not migration.copy_done:
            staged_before = migration.copied
            assert executor.step(migration, 40) == migration.copied - staged_before
            oid = in_parent[step % len(in_parent)]
            pos = Point(
                area.min_x + ((step * 37) % 100) / 100.0 * area.width,
                area.min_y + ((step * 53) % 100) / 100.0 * area.height,
            )
            res = svc.run(reporter.send_update("root.0", oid, pos))
            assert res.ok
            step += 1
        report = executor.cutover(migration)
        assert report.moved == len(in_parent)
        svc.settle()
        svc.check_consistency()
        assert svc.total_tracked() == 500
        # The staged position must be the *latest* one, not the snapshot.
        last_oid = in_parent[(step - 1) % len(in_parent)]
        child = report.new_homes[last_oid]
        assert svc.servers[child].store.sightings.get(last_oid) is not None


class TestEpochRaces:
    def test_stale_epoch_envelope_arriving_mid_cutover(self):
        """An UpdateBatchReq stamped with the pre-split epoch and
        delivered *after* the cutover routes down the fresh forwarding
        path and is counted as stale-epoch traffic."""
        svc, homes = table2_service(object_count=200, seed=44)
        executor = MigrationExecutor(svc)
        migration = executor.begin(plan_split(svc))
        oids = [oid for oid, home in homes.items() if home == "root.0"][:5]
        area = svc.servers["root.0"].config.area
        courier = Reporter()
        svc.network.join(courier)
        old_epoch = svc.hierarchy.epoch
        # Queue the envelope (it sits on the virtual wire), then cut
        # over before delivery.
        future = courier.park("stale-env")
        courier.send(
            "root.0",
            m.UpdateBatchReq(
                request_id="stale-env",
                reply_to=courier.address,
                sightings=tuple(
                    SightingRecord(oid, 0.0, area.center, 10.0) for oid in oids
                ),
                epoch=old_epoch,
            ),
        )
        executor.cutover(migration)
        assert svc.hierarchy.epoch == old_epoch + 1
        res = svc.run(courier.wait("stale-env", future))
        assert isinstance(res, m.UpdateBatchRes)
        assert all(outcome.ok for outcome in res.outcomes)
        # The agents answered are the new children, re-pointing senders.
        new_agents = {outcome.agent for outcome in res.outcomes}
        assert new_agents <= set(
            ref.server_id for ref in svc.hierarchy.config("root.0").children
        )
        assert svc.servers["root.0"].stats.stale_epoch_messages >= 1
        svc.check_consistency()

    def test_range_collector_racing_cutover_reissues(self):
        """A merge cutover scheduled *inside the loop* while a range
        query is mid-collection: the absorbing parent's coverage
        overlaps the already-counted retired child, which used to
        resolve the collector early with missing entries — the epoch
        bump now forces a re-issue and the answer stays complete."""
        svc, homes = table2_service(object_count=240, seed=45)
        executor = MigrationExecutor(svc)
        split_report = executor.execute(plan_split(svc))
        migration = executor.begin(
            MergePlan(parent_id="root.0", children=split_report.spawned)
        )
        executor.step(migration)
        entry = svc.servers["root.3"]
        # Cut over at a virtual instant chosen to land between the
        # fan-out dispatch and the last sub-result (per-hop latency is
        # 350 µs): the loop is live, nothing is drained.
        svc.loop.call_later(450e-6, lambda: executor.cutover(migration))
        answer = svc.range_query(
            svc.hierarchy.root_area(),
            req_acc=100.0,
            req_overlap=0.5,
            entry_server="root.3",
        )
        assert len(answer.entries) == 240
        assert svc.hierarchy.epoch == 2  # split, then the racing merge
        assert entry.stats.epoch_retries >= 1
        svc.settle()
        svc.check_consistency()

    def test_adopt_hierarchy_requires_increasing_epoch(self):
        svc, _ = table2_service(object_count=10, seed=46)
        with pytest.raises(LocationServiceError):
            svc.adopt_hierarchy(svc.hierarchy)

    def test_epochs_propagate_to_all_servers(self):
        svc, _ = table2_service(object_count=120, seed=47)
        executor = MigrationExecutor(svc)
        executor.execute(plan_split(svc))
        assert svc.hierarchy.epoch == 1
        for server in svc.servers.values():
            assert server.topology_epoch == 1


class TestInvalidationBroadcast:
    def test_cutover_retargets_cached_handover_dispatch(self):
        """A leaf holding a §6.5 (leaf, area) entry for the split leaf
        must stop direct-dispatching to it after the broadcast — and
        know the new children without re-learning through the
        hierarchy."""
        svc, homes = table2_service(
            object_count=200, seed=48, cache_config=CacheConfig.all_enabled()
        )
        executor = MigrationExecutor(svc)
        observer = svc.servers["root.3"]
        split_area = svc.servers["root.0"].config.area
        observer.caches.note_leaf_area("root.0", split_area)
        report = executor.execute(plan_split(svc))
        assert report.invalidations_sent >= 1
        svc.settle()  # deliver the broadcast
        center = split_area.center
        cached = observer.caches.leaf_for_point(center.x, center.y)
        assert cached != "root.0"
        assert cached in report.spawned  # pre-seeded with the new owner
        assert observer.caches.stats.invalidations_applied >= 1

    def test_merge_broadcast_forgets_children_and_learns_parent(self):
        svc, homes = table2_service(
            object_count=200, seed=49, cache_config=CacheConfig.all_enabled()
        )
        executor = MigrationExecutor(svc)
        # The observer holds a route to the splitting leaf, so the scoped
        # split broadcast reaches it and pre-seeds the children; holding
        # those keeps it in scope for the merge broadcast too.
        svc.servers["root.3"].caches.note_leaf_area(
            "root.0", svc.servers["root.0"].config.area
        )
        split_report = executor.execute(plan_split(svc))
        svc.settle()
        merge_report = executor.execute(
            MergePlan(parent_id="root.0", children=split_report.spawned)
        )
        svc.settle()
        observer = svc.servers["root.3"]
        center = svc.hierarchy.config("root.0").area.center
        assert observer.caches.leaf_for_point(center.x, center.y) == "root.0"
        assert merge_report.invalidations_sent >= 1

    def test_in_flight_forward_after_invalidation_still_heals(self):
        """The broadcast and a §6.5-cached direct dispatch can cross on
        the wire: the dispatch sent before the invalidation arrived
        still lands (forwarding path), teaching nothing wrong."""
        svc, homes = table2_service(
            object_count=200, seed=50, cache_config=CacheConfig.all_enabled()
        )
        executor = MigrationExecutor(svc)
        observer_id = "root.3"
        split_area = svc.servers["root.0"].config.area
        svc.servers[observer_id].caches.note_leaf_area("root.0", split_area)
        report = executor.execute(plan_split(svc))
        # Immediately (broadcast still in flight) a cached handover
        # dispatch targets the now-interior split leaf.
        oid = next(oid for oid, home in homes.items() if home == observer_id)
        reporter = Reporter()
        svc.network.join(reporter)
        res = svc.run(reporter.send_update(observer_id, oid, split_area.center))
        assert res.ok and res.agent in report.spawned
        svc.settle()
        svc.check_consistency()


class TestPlannerBusyExclusion:
    def test_in_flight_leaves_are_not_replanned(self):
        svc, homes = table2_service(object_count=400, seed=51)
        executor = MigrationExecutor(svc)
        migration = executor.begin(plan_split(svc))
        planner = RebalancePlanner(PlannerConfig(split_load=1.0))
        rates = {sid: 100.0 for sid in svc.hierarchy.leaf_ids()}
        plans = planner.plan(svc, rates, busy=executor.busy_server_ids())
        assert all(plan.leaf_id != "root.0" for plan in plans)
        # Reserved child names must not be reused either.
        reserved = {child_id for child_id, _ in migration.plan.children}
        for plan in plans:
            assert reserved.isdisjoint({cid for cid, _ in plan.children})
        executor.cutover(migration)
        svc.check_consistency()
