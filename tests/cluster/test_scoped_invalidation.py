"""Scoped §6.5 invalidation broadcasts (PR-4 ROADMAP follow-up).

The PR-4 cutover broadcast one ``CacheInvalidate`` to *every* caching
leaf; on wide deployments that made the topology lane scale with leaf
count even though most leaves never cached the retiring address.  The
scoped broadcast messages only the leaves whose caches actually hold a
route to a forgotten server — the rest have nothing to invalidate and
re-learn the new owners lazily.
"""

from repro.cluster import MergePlan, MigrationExecutor, PlannerConfig, RebalancePlanner, SplitPlan
from repro.core import CacheConfig
from repro.sim.metrics import MessageLedger
from repro.sim.scenario import table2_service


def plan_split(svc, leaf_id="root.0"):
    planner = RebalancePlanner(PlannerConfig(split_load=1.0))
    plans = planner.plan(svc, {leaf_id: 100.0})
    assert len(plans) == 1 and isinstance(plans[0], SplitPlan)
    return plans[0]


class TestScopedBroadcast:
    def test_non_holder_leaf_receives_no_invalidation(self):
        """A leaf whose cache never learned the retiring address must
        receive no CacheInvalidate at all — the topology lane counts
        exactly one message for the one holder."""
        svc, _ = table2_service(
            object_count=200, seed=60, cache_config=CacheConfig.all_enabled()
        )
        holder = svc.servers["root.3"]
        bystander = svc.servers["root.1"]
        holder.caches.note_leaf_area("root.0", svc.servers["root.0"].config.area)
        assert holder.caches.holds_route_to("root.0")
        assert not bystander.caches.holds_route_to("root.0")

        ledger = MessageLedger(svc.network.stats)
        report = MigrationExecutor(svc).execute(plan_split(svc))
        svc.settle()  # deliver the broadcast
        assert report.invalidations_sent == 1  # the holder, nobody else
        assert ledger.topology_messages() == 1
        assert holder.caches.stats.invalidations_applied == 1
        assert bystander.caches.stats.invalidations_applied == 0
        assert "CacheInvalidate" not in bystander.stats.messages_handled
        # The holder was retargeted; the bystander simply knows nothing.
        center = svc.hierarchy.config("root.0").area.center
        assert holder.caches.leaf_for_point(center.x, center.y) in report.spawned
        assert bystander.caches.leaf_for_point(center.x, center.y) is None

    def test_agent_cache_entries_also_count_as_held_routes(self):
        svc, homes = table2_service(
            object_count=200, seed=61, cache_config=CacheConfig.all_enabled()
        )
        holder = svc.servers["root.2"]
        oid = next(oid for oid, home in homes.items() if home == "root.0")
        holder.caches.note_agent(oid, "root.0")
        assert holder.caches.holds_route_to("root.0")
        report = MigrationExecutor(svc).execute(plan_split(svc))
        svc.settle()
        assert report.invalidations_sent == 1
        assert holder.caches.stats.invalidations_applied == 1
        # The stale (object -> agent) entry routing to the split leaf is gone.
        assert holder.caches.agent_of(oid) is None

    def test_merge_broadcast_scopes_to_child_holders(self):
        svc, _ = table2_service(
            object_count=200, seed=62, cache_config=CacheConfig.all_enabled()
        )
        executor = MigrationExecutor(svc)
        split_report = executor.execute(plan_split(svc))
        svc.settle()
        holder = svc.servers["root.3"]
        child = split_report.spawned[0]
        holder.caches.note_leaf_area(child, svc.servers[child].config.area)
        ledger = MessageLedger(svc.network.stats)
        merge_report = executor.execute(
            MergePlan(parent_id="root.0", children=split_report.spawned)
        )
        svc.settle()
        assert merge_report.invalidations_sent == 1
        assert ledger.topology_messages() == 1
        center = svc.hierarchy.config("root.0").area.center
        assert holder.caches.leaf_for_point(center.x, center.y) == "root.0"

    def test_scope_all_restores_full_broadcast(self):
        svc, _ = table2_service(
            object_count=200, seed=63, cache_config=CacheConfig.all_enabled()
        )
        ledger = MessageLedger(svc.network.stats)
        sent = svc.broadcast_cache_invalidation(forget=("root.0",), scope="all")
        svc.settle()
        # Every live caching leaf hears an unconditional broadcast.
        assert sent == len(svc.hierarchy.leaf_ids())
        assert ledger.topology_messages() == sent

    def test_cacheless_deployment_sends_nothing(self):
        svc, _ = table2_service(object_count=200, seed=64)  # caches disabled
        ledger = MessageLedger(svc.network.stats)
        report = MigrationExecutor(svc).execute(plan_split(svc))
        svc.settle()
        assert report.invalidations_sent == 0
        assert ledger.topology_messages() == 0
