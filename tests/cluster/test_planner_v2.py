"""Planner v2 edge cases: rate weighting, k-way fan-out, chunk tuning."""

import pytest

from repro.cluster import (
    AdaptiveCopyChunker,
    LoadMonitor,
    MigrationExecutor,
    PlannerConfig,
    RebalancePlanner,
    SplitPlan,
)
from repro.core.hierarchy import split_rects
from repro.errors import ConfigurationError
from repro.geo import Point, Rect
from repro.model import SightingRecord
from repro.sim.scenario import table2_service


def place(svc, leaf_id, positions, prefix="p"):
    leaf = svc.servers[leaf_id]
    oids = []
    for i, pos in enumerate(positions):
        oid = f"{prefix}-{i}"
        leaf.store.register(SightingRecord(oid, 0.0, pos, 10.0), 25.0, 100.0, "t", now=0.0)
        path = svc.hierarchy.path_to_root(leaf_id)
        for below, above in zip(path, path[1:]):
            svc.servers[above].visitors.insert_forward(oid, below)
        oids.append(oid)
    return oids


def binary_planner(**overrides) -> RebalancePlanner:
    return RebalancePlanner(
        PlannerConfig(split_load=10.0, max_split_children=2, **overrides)
    )


class TestRateWeightedCuts:
    def test_uniformly_hot_leaf_matches_count_weighting(self):
        """When every object is equally hot, rate weighting changes
        nothing: the weighted cut lands where the count cut does."""
        svc, _ = table2_service(object_count=0)
        grid = [
            Point(40.0 + 70.0 * (i % 10), 40.0 + 70.0 * (i // 10)) for i in range(100)
        ]
        oids = place(svc, "root.0", grid)
        by_count = binary_planner().plan(svc, {"root.0": 100.0})
        by_rate = binary_planner().plan(
            svc, {"root.0": 100.0}, object_rates={oid: 5.0 for oid in oids}
        )
        assert len(by_count) == len(by_rate) == 1
        assert by_count[0].axis == by_rate[0].axis
        assert by_count[0].cuts == pytest.approx(by_rate[0].cuts)

    def test_hot_minority_pulls_the_cut(self):
        """A handful of hot objects outweigh a dormant majority: the cut
        separates the hot mass, not the population median."""
        svc, _ = table2_service(object_count=0)
        hot = [Point(40.0 + i, 300.0) for i in range(10)]  # far west
        dormant = [Point(600.0 + (i % 10) * 10, 100.0 + i) for i in range(90)]  # east
        oids = place(svc, "root.0", hot + dormant)
        rates = {oid: (10.0 if i < 10 else 0.0) for i, oid in enumerate(oids)}
        plans = binary_planner().plan(svc, {"root.0": 100.0}, object_rates=rates)
        assert len(plans) == 1 and plans[0].axis == "x"
        # The count median sits deep inside the dormant cluster (x>600);
        # the rate-weighted cut splits the hot ten instead.
        assert plans[0].cut < 60.0

    def test_all_dormant_falls_back_to_counts(self):
        """Zero-rate objects carry no signal: the planner must behave
        exactly like the count-based one rather than refuse to split."""
        svc, _ = table2_service(object_count=0)
        west = [Point(50.0 + i % 5, 50.0 + i // 5) for i in range(30)]
        east = [Point(700.0 + i % 5, 50.0 + i // 5) for i in range(30)]
        oids = place(svc, "root.0", west + east)
        zero_rates = {oid: 0.0 for oid in oids}
        by_rate = binary_planner().plan(svc, {"root.0": 100.0}, object_rates=zero_rates)
        by_count = binary_planner().plan(svc, {"root.0": 100.0})
        assert len(by_rate) == 1
        assert by_rate[0].cuts == pytest.approx(by_count[0].cuts)


class TestKWayFanOut:
    def test_fanout_scales_with_load(self):
        svc, _ = table2_service(object_count=400)
        planner = RebalancePlanner(
            PlannerConfig(split_load=100.0, max_split_children=8, split_headroom=1.0)
        )
        plans = planner.plan(svc, {"root.0": 390.0})
        assert len(plans) == 1
        assert len(plans[0].children) == 4
        # The surge view sizes the fan-out up when the EWMA lags.
        plans = planner.plan(
            svc, {"root.0": 390.0}, surge_rates={"root.0": 790.0}
        )
        assert len(plans[0].children) == 8

    def test_kway_children_tile_the_leaf(self):
        svc, _ = table2_service(object_count=600)
        planner = RebalancePlanner(
            PlannerConfig(split_load=10.0, max_split_children=8)
        )
        plans = planner.plan(svc, {"root.0": 100.0})
        assert len(plans) == 1
        plan = plans[0]
        assert len(plan.children) >= 3
        area = svc.hierarchy.config("root.0").area
        total = sum(child_area.area for _, child_area in plan.children)
        assert total == pytest.approx(area.area)
        executor = MigrationExecutor(svc)
        executor.execute(plan)
        svc.hierarchy.validate()
        svc.check_consistency()

    def test_kway_split_with_one_empty_child_migrates_cleanly(self):
        """A hand-cut band holding no objects must still spawn: the empty
        leaf serves its (currently empty) area after cutover."""
        svc, homes = table2_service(object_count=0)
        west = [Point(30.0 + i % 10, 200.0 + i // 10) for i in range(40)]
        east = [Point(700.0 + i % 10, 200.0 + i // 10) for i in range(40)]
        place(svc, "root.0", west + east)
        area = svc.hierarchy.config("root.0").area
        cuts = (200.0, 500.0)  # middle band [200, 500) holds nothing
        children = tuple(
            (f"root.0/e.{i}", rect)
            for i, rect in enumerate(split_rects(area, "x", cuts))
        )
        plan = SplitPlan(
            leaf_id="root.0", axis="x", cuts=cuts, children=children, reason="test"
        )
        executor = MigrationExecutor(svc)
        report = executor.execute(plan)
        assert report.moved == 80
        empty_id = children[1][0]
        assert len(svc.servers[empty_id].store.sightings) == 0
        assert len(svc.servers[children[0][0]].store.sightings) == 40
        assert len(svc.servers[children[2][0]].store.sightings) == 40
        svc.hierarchy.validate()
        svc.check_consistency()
        assert svc.total_tracked() == 80
        # The empty leaf is live: an object moving into its band lands there.
        svc.settle()

    def test_degenerate_stacked_population_yields_no_plan(self):
        svc, _ = table2_service(object_count=0)
        place(svc, "root.0", [Point(10.0, 10.0)] * 40)
        planner = RebalancePlanner(
            PlannerConfig(split_load=10.0, max_split_children=8)
        )
        assert planner.plan(svc, {"root.0": 1000.0}) == []

    def test_zero_min_leaf_side_never_duplicates_cuts(self):
        """A heavy point satisfying several quantile targets must not
        emit the same cut twice (min_leaf_side=0 disables the spacing
        guard, so strict monotonicity has to hold on its own)."""
        svc, _ = table2_service(object_count=0)
        heavy = [Point(100.0, 375.0)] * 30  # one stacked heavy column
        spread = [Point(200.0 + i * 10.0, 375.0) for i in range(10)]
        place(svc, "root.0", heavy + spread)
        planner = RebalancePlanner(
            PlannerConfig(
                split_load=10.0, max_split_children=8, min_leaf_side=0.0
            )
        )
        plans = planner.plan(svc, {"root.0": 100.0})
        assert len(plans) == 1
        cuts = plans[0].cuts
        assert all(a < b for a, b in zip(cuts, cuts[1:]))
        MigrationExecutor(svc).execute(plans[0])
        svc.hierarchy.validate()
        svc.check_consistency()


class TestSplitRects:
    def test_axis_bands(self):
        area = Rect(0, 0, 100, 50)
        bands = split_rects(area, "x", [25.0, 75.0])
        assert bands == [
            Rect(0, 0, 25, 50),
            Rect(25, 0, 75, 50),
            Rect(75, 0, 100, 50),
        ]

    def test_quad(self):
        area = Rect(0, 0, 100, 100)
        quads = split_rects(area, "quad", [40.0, 60.0])
        assert quads == [
            Rect(0, 0, 40, 60),
            Rect(40, 0, 100, 60),
            Rect(0, 60, 40, 100),
            Rect(40, 60, 100, 100),
        ]

    def test_invalid_cuts_rejected(self):
        area = Rect(0, 0, 100, 100)
        with pytest.raises(ConfigurationError):
            split_rects(area, "x", [75.0, 25.0])  # not ascending
        with pytest.raises(ConfigurationError):
            split_rects(area, "x", [150.0])  # escapes the area
        with pytest.raises(ConfigurationError):
            split_rects(area, "quad", [50.0])  # quad needs two cuts
        with pytest.raises(ConfigurationError):
            split_rects(area, "z", [50.0])  # unknown axis

    def test_with_split_k_round_trip(self):
        svc, _ = table2_service(object_count=0)
        h = svc.hierarchy
        h2 = h.with_split_k("root.0", "quad", (200.0, 300.0), ["a", "b", "c", "d"])
        assert h2.epoch == h.epoch + 1
        assert sorted(ref.server_id for ref in h2.config("root.0").children) == [
            "a",
            "b",
            "c",
            "d",
        ]
        with pytest.raises(ConfigurationError):
            h.with_split_k("root.0", "x", (375.0,), ["only-one-id", "x", "y"])


class TestObjectRateWindow:
    def test_rates_fold_and_decay(self):
        svc, _ = table2_service(object_count=8)
        monitor = LoadMonitor(half_life=1.0)
        monitor.sample(svc, 0.0)
        monitor.record_object_updates(["a", "a", "b"])
        monitor.sample(svc, 1.0)
        assert monitor.object_rate("a") == pytest.approx(2.0)
        assert monitor.object_rate("b") == pytest.approx(1.0)
        assert monitor.object_rate("missing") == 0.0
        # One idle interval decays by the half-life factor.
        monitor.sample(svc, 2.0)
        assert monitor.object_rate("a") == pytest.approx(1.0)
        # Long dormancy drops the entry entirely (bounded memory).
        for step in range(3, 30):
            monitor.sample(svc, float(step))
        assert monitor.object_rates() == {}

    def test_update_listener_feeds_monitor(self):
        svc, homes = table2_service(object_count=40)
        monitor = LoadMonitor(half_life=5.0)
        svc.set_update_listener(monitor.record_object_updates)
        monitor.sample(svc, svc.loop.now)
        oid, agent = next(iter(homes.items()))
        pos = svc.servers[agent].config.area.center
        obj = svc.new_tracked_object(oid, entry_server=agent)
        obj.agent = agent
        svc.run(obj.report(pos))
        monitor.sample(svc, svc.loop.now + 1.0)
        assert monitor.object_rate(oid) > 0.0


class TestAdaptiveChunker:
    def test_slow_tick_shrinks_the_chunk(self):
        chunker = AdaptiveCopyChunker(budget=0.2, headroom=1.3, min_chunk=8)
        for _ in range(8):
            chunker.note_steady_tick(0.010)  # 10 ms steady ticks
        chunker.note_copy(100, 0.001)  # 10 us per staged entry
        comfortable = chunker.chunk
        assert comfortable == int(0.2 * 0.010 / 1e-5)  # budget-sized
        # An artificially slow migration tick (3x steady) halves the
        # budget; sustained pressure keeps halving it.
        chunker.note_migration_tick(0.030)
        assert chunker.chunk == comfortable // 2
        chunker.note_migration_tick(0.030)
        assert chunker.chunk == comfortable // 4
        # Comfortable ticks recover the budget additively to its target.
        for _ in range(10):
            chunker.note_migration_tick(0.010)
        assert chunker.chunk == comfortable

    def test_chunk_respects_bounds(self):
        chunker = AdaptiveCopyChunker(
            initial=256, min_chunk=64, max_chunk=512, budget=0.2
        )
        assert chunker.chunk == 256  # no measurements yet
        chunker.note_steady_tick(10.0)
        chunker.note_copy(10, 1e-6)  # absurdly cheap -> capped
        assert chunker.chunk == 512
        chunker.note_copy(1, 10.0)  # absurdly dear -> floored (EWMA catches up)
        chunker.note_copy(1, 10.0)
        chunker.note_copy(1, 10.0)
        assert chunker.chunk == 64

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveCopyChunker(initial=10, min_chunk=20)
        with pytest.raises(ValueError):
            AdaptiveCopyChunker(budget=1.5)
        with pytest.raises(ValueError):
            AdaptiveCopyChunker(headroom=0.9)


class TestRateMassSeeding:
    def test_split_seeds_children_by_rate_mass_not_counts(self):
        """After a rate-weighted split, the dormant-heavy child must not
        inherit the hot minority's load."""
        svc, _ = table2_service(object_count=0)
        hot = [Point(40.0 + i, 300.0) for i in range(10)]
        dormant = [Point(600.0 + i % 10 * 10.0, 100.0 + i) for i in range(90)]
        oids = place(svc, "root.0", hot + dormant)
        monitor = LoadMonitor(half_life=5.0)
        monitor.sample(svc, 0.0)
        monitor.record_object_updates([oid for oid in oids[:10] for _ in range(10)])
        monitor.sample(svc, 1.0)
        monitor._rates["root.0"] = 100.0  # pretend the leaf EWMA converged
        plans = binary_planner().plan(
            svc, {"root.0": 100.0}, object_rates=monitor.object_rates()
        )
        assert len(plans) == 1 and plans[0].cut < 60.0
        executor = MigrationExecutor(svc, monitor=monitor)
        report = executor.execute(plans[0])
        west_child, east_child = (cid for cid, _ in plans[0].children)
        # The weighted cut halves the hot mass (5 hot west; 5 hot + 90
        # dormant east), so each child inherits half the leaf's load.
        # Count-based seeding would have handed the east child 95% of it.
        assert monitor.rate_of(west_child) == pytest.approx(50.0)
        assert monitor.rate_of(east_child) == pytest.approx(50.0)
        assert report.moved == 100
