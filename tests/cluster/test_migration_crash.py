"""Crash-exact recovery at every migration phase boundary.

The satellite matrix behind the chaos layer's migration scenarios: a
server is killed before ``begin``, during the copy, during dual-write,
and after cutover — in a quiesced lane (no traffic inside the
migration window) and an overlapped one (position reports keep landing
between copy steps).  Every cell must end with zero lost and zero
duplicated sightings and every live server at the current topology
epoch: pre-cutover crashes are recovered by *discarding* the window
(the epoch never moves) and re-running it, the post-cutover crash by
rolling the committed child forward from its WAL.
"""

import random

import pytest

from repro.chaos import RecoveryCoordinator, inject_crash
from repro.cluster import MigrationExecutor, SplitPlan
from repro.core import messages as m
from repro.geo import Point, Rect
from repro.model import SightingRecord
from repro.runtime.base import Endpoint
from repro.sim.scenario import table2_service

PHASES = ("before_begin", "copy", "dual_write", "cutover")
LANES = ("quiesced", "overlapped")

OBJECTS = 150


class Reporter(Endpoint):
    _counter = 0

    def __init__(self):
        type(self)._counter += 1
        super().__init__(f"crash-test-reporter-{type(self)._counter}")

    async def send_update(self, agent: str, oid: str, pos: Point) -> m.UpdateRes:
        res = await self.request(
            agent,
            m.UpdateReq(
                request_id=self.next_request_id(),
                reply_to=self.address,
                sighting=SightingRecord(oid, 0.0, pos, 10.0),
            ),
        )
        assert isinstance(res, m.UpdateRes)
        return res


def _split_plan():
    return SplitPlan(
        leaf_id="root.0",
        axis="x",
        cuts=(375.0,),
        children=(
            ("root.0/t.0", Rect(0.0, 0.0, 375.0, 750.0)),
            ("root.0/t.1", Rect(375.0, 0.0, 750.0, 750.0)),
        ),
        reason="crash matrix",
    )


class Fixture:
    """One table-2 service plus the bookkeeping the matrix cells share."""

    def __init__(self, seed: int):
        self.svc, self.homes = table2_service(object_count=OBJECTS, seed=seed)
        self.rng = random.Random(seed)
        self.reporter = Reporter()
        self.svc.network.join(self.reporter)
        self.executor = MigrationExecutor(self.svc)
        self.coordinator = RecoveryCoordinator(self.svc, executor=self.executor)
        self.local = [o for o, h in self.homes.items() if h == "root.0"]

    def report(self, oid: str, agent: str | None = None) -> None:
        """One position report inside root.0's quadrant; repoints homes."""
        pos = Point(self.rng.uniform(0.0, 750.0), self.rng.uniform(0.0, 750.0))
        res = self.svc.run(
            self.reporter.send_update(agent or self.homes[oid], oid, pos)
        )
        assert res.ok
        self.homes[oid] = res.agent

    def rebuild_sightings(self) -> None:
        """Re-report every object once — the soft-state rebuild the
        paper promises 'as position update requests come in'."""
        for oid in list(self.homes):
            self.report(oid)

    def assert_exact(self) -> None:
        """Zero lost, zero duplicated, consistent epoch everywhere."""
        svc = self.svc
        assert svc.total_tracked() == OBJECTS  # tracked > OBJECTS ⇒ duplicates
        svc.hierarchy.validate()
        svc.check_consistency()
        epoch = svc.hierarchy.epoch
        assert all(s.topology_epoch == epoch for s in svc.servers.values())


def _drive_to_phase(fx: Fixture, plan, phase: str, lane: str):
    """Advance the migration to ``phase`` and return the in-flight
    migration (None when the window never opened).  Overlapped lanes
    interleave live reports with the copy steps."""
    if phase == "before_begin":
        return None
    migration = fx.executor.begin(plan)
    if phase == "copy":
        fx.executor.step(migration, max_objects=10)
        if lane == "overlapped":
            for oid in fx.local[:5]:
                fx.report(oid, agent="root.0")
        fx.executor.step(migration, max_objects=10)
    else:  # dual_write or cutover: finish the copy, mirrors stay armed
        fx.executor.step(migration)
        if lane == "overlapped":
            for oid in fx.local[:5]:
                fx.report(oid, agent="root.0")
    return migration


@pytest.mark.parametrize("lane", LANES)
@pytest.mark.parametrize("phase", PHASES)
def test_crash_recovery_is_exact_at_every_boundary(phase, lane):
    fx = Fixture(seed=11 + PHASES.index(phase))
    plan = _split_plan()
    epoch_before = fx.svc.hierarchy.epoch

    migration = _drive_to_phase(fx, plan, phase, lane)
    if phase == "cutover":
        report = fx.executor.cutover(migration)
        fx.homes.update(report.new_homes)
        victim = "root.0/t.0"
    else:
        victim = "root.0"

    inject_crash(fx.svc, victim)
    recovery = fx.coordinator.recover_dead_leaf(victim, strategy="restart")
    assert recovery is not None
    assert list(fx.executor.in_flight) == []

    if phase == "cutover":
        # The committed window rolls forward: the child restarts from the
        # WAL the cutover staged, at the (bumped) epoch.
        assert fx.svc.hierarchy.epoch == epoch_before + 1
        assert recovery.replayed_records == sum(
            1 for h in fx.homes.values() if h == victim
        )
    else:
        # Pre-cutover crashes discard: the epoch never moved, the staged
        # children never joined the network.
        assert fx.svc.hierarchy.epoch == epoch_before
        assert "root.0/t.0" not in fx.svc.servers
        assert fx.svc.servers["root.0"].is_leaf

    fx.rebuild_sightings()
    fx.assert_exact()

    if phase != "cutover":
        # The discarded window re-runs cleanly, per lane.
        if lane == "quiesced":
            rerun = fx.executor.execute(plan)
        else:
            rerun = _overlapped_rerun(fx, plan)
        assert rerun.moved == sum(1 for h in fx.homes.values() if h == "root.0")
        fx.homes.update(rerun.new_homes)
        assert fx.svc.hierarchy.epoch == epoch_before + 1
        fx.svc.settle()
        fx.assert_exact()


def _overlapped_rerun(fx: Fixture, plan):
    """Re-run the discarded window with reports landing between steps."""
    migration = fx.executor.begin(plan)
    while fx.executor.step(migration, max_objects=20):
        for oid in fx.local[:3]:
            fx.report(oid, agent="root.0")
    return fx.executor.cutover(migration)
