"""Regression tests: protocol-lane envelopes racing live rebalances.

A split or merge must never degrade the batched lane: an envelope that
reaches a server mid-retirement is forwarded *whole* to the successor —
it must not split back into per-object messages — and a batched tick
interleaved with rebalance rounds loses no sightings even when the
believed-agent map is stale or its aliases have been garbage-collected.
"""

import random

from repro.cluster import LoadMonitor, MergePlan, PlannerConfig, RebalancePlanner
from repro.core import messages as m
from repro.geo import Point
from repro.model import RegistrationInfo, SightingRecord
from repro.runtime.base import Endpoint
from repro.sim.elastic import ElasticHarness, _fresh_service, _populate
from repro.sim.metrics import MessageLedger
from repro.sim.scenario import table2_service

from tests.cluster.test_migration import force_split


class Courier(Endpoint):
    """Sends protocol-lane envelopes directly at chosen servers."""

    _counter = 0

    def __init__(self):
        type(self)._counter += 1
        super().__init__(f"batch-courier-{type(self)._counter}")


def split_and_merge(svc):
    """Split root.0, then merge the children back: both retired."""
    executor, split_report = force_split(svc)
    merge_report = executor.execute(
        MergePlan(parent_id="root.0", children=split_report.spawned)
    )
    return split_report, merge_report


class TestRetiredServerKeepsEnvelopesWhole:
    def test_update_envelope_forwarded_without_splitting(self):
        svc, homes = table2_service(object_count=200, seed=21)
        split_report, merge_report = split_and_merge(svc)
        retired_id = split_report.spawned[0]
        assert svc.retired_servers[retired_id].retired
        oids = list(merge_report.new_homes)[:8]
        courier = Courier()
        svc.network.join(courier)
        ledger = MessageLedger(svc.network.stats)
        area = svc.hierarchy.config("root.0").area
        sightings = tuple(
            SightingRecord(oid, 0.0, area.center, 10.0) for oid in oids
        )
        # The device fleet still addresses the merged-away child.
        res = svc.run(
            courier.request(
                retired_id,
                m.UpdateBatchReq(
                    request_id=courier.next_request_id(),
                    reply_to=courier.address,
                    sightings=sightings,
                ),
            )
        )
        assert isinstance(res, m.UpdateBatchRes)
        assert all(o.ok and o.agent == "root.0" for o in res.outcomes)
        delta = ledger.protocol_delta()
        # Exactly the original + the forwarded copy — never per-object.
        assert delta.get("UpdateBatchReq") == 2
        assert "UpdateReq" not in delta
        assert "HandoverReq" not in delta
        svc.check_consistency()

    def test_handover_envelope_forwarded_without_splitting(self):
        """A §6.5-cached direct handover dispatch hits a leaf that retired
        in the meantime: the whole envelope must travel on (and the path
        be repaired), not explode into HandoverReq per object."""
        svc, homes = table2_service(object_count=200, seed=22)
        split_report, merge_report = split_and_merge(svc)
        retired_id = split_report.spawned[1]
        target_area = svc.hierarchy.config("root.0").area
        # Fresh objects homed elsewhere, crossing into the merged leaf.
        donor = "root.3"
        oids = []
        for i in range(6):
            oid = f"race-{i}"
            pos = svc.hierarchy.config(donor).area.center
            svc.servers[donor].store.register(
                SightingRecord(oid, 0.0, pos, 10.0), 25.0, 100.0, "test", now=0.0
            )
            for below, above in zip(
                svc.hierarchy.path_to_root(donor),
                svc.hierarchy.path_to_root(donor)[1:],
            ):
                svc.servers[above].visitors.insert_forward(oid, below)
            oids.append(oid)
        courier = Courier()
        svc.network.join(courier)
        ledger = MessageLedger(svc.network.stats)
        items = tuple(
            m.HandoverBatchItem(
                sighting=SightingRecord(oid, 1.0, target_area.center, 10.0),
                reg_info=RegistrationInfo("test", 25.0, 100.0),
            )
            for oid in oids
        )
        res = svc.run(
            courier.request(
                retired_id,
                m.HandoverBatchReq(
                    request_id=courier.next_request_id(),
                    reply_to=courier.address,
                    sender=donor,
                    items=items,
                    direct=True,
                ),
            )
        )
        assert isinstance(res, m.HandoverBatchRes)
        assert all(o.new_agent == "root.0" for o in res.outcomes)
        delta = ledger.protocol_delta()
        assert delta.get("HandoverBatchReq") == 2  # original + forwarded
        assert "HandoverReq" not in delta
        for oid in oids:
            assert svc.pos_query(oid) is not None


class TestRebalanceRacingBatchedTicks:
    def test_batched_ticks_interleaved_with_rebalances_lose_nothing(self):
        """The full race: batched envelopes every tick, splits/merges and
        alias garbage collection between ticks, stale homes throughout."""
        svc = _fresh_service()
        rng = random.Random(17)
        placements = [
            (
                f"o{i}",
                Point(rng.uniform(300, 450), rng.uniform(300, 450)),
            )
            for i in range(220)
        ]
        homes = _populate(svc, placements)
        harness = ElasticHarness(
            svc,
            homes,
            monitor=LoadMonitor(half_life=5.0, gc_retired_after=1),
            planner=RebalancePlanner(
                PlannerConfig(split_load=60.0, hot_min_load=30.0, merge_load=10.0)
            ),
        )
        area = svc.hierarchy.root_area()
        positions = dict(placements)
        for tick in range(10):
            moves = []
            for oid, pos in positions.items():
                new_pos = Point(
                    min(max(pos.x + rng.uniform(-80, 220), area.min_x), area.max_x),
                    min(max(pos.y + rng.uniform(-80, 220), area.min_y), area.max_y),
                )
                positions[oid] = new_pos
                moves.append((oid, new_pos))
            harness.apply_reports(
                moves, protocol_lane="batched", envelope_timeout=2.0
            )
            svc.run(_sleep(svc, 1.0))
            harness.sample()  # also garbage-collects quiet aliases
            if tick % 2 == 1:
                harness.rebalance()
        result = harness.verify(expected_tracked=220)
        assert result["lost_sightings"] == 0
        assert result["hierarchy_valid"] and result["consistency_ok"]
        assert harness.split_count() >= 1


async def _sleep(svc, dt):
    await svc.loop.sleep(dt)
