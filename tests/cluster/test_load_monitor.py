"""Tests for the decayed sliding-window load monitor."""

import pytest

from repro.cluster import LoadMonitor
from repro.cluster.load import ops_of
from repro.sim.scenario import table2_service


def bump_updates(svc, leaf_id: str, count: int) -> None:
    svc.servers[leaf_id].stats.updates += count


class TestOpsOf:
    def test_counts_updates_and_queries(self):
        svc, _ = table2_service(object_count=5)
        server = svc.servers["root.0"]
        base = ops_of(server)
        server.stats.updates += 3
        server.stats.pos_queries_served += 2
        server.stats.handovers_admitted += 1
        assert ops_of(server) == base + 6


class TestLoadMonitor:
    def test_half_life_must_be_positive(self):
        with pytest.raises(ValueError):
            LoadMonitor(half_life=0.0)

    def test_first_sample_has_zero_rate(self):
        svc, _ = table2_service(object_count=10)
        monitor = LoadMonitor()
        samples = monitor.sample(svc, now=0.0)
        assert set(samples) == set(svc.servers)
        assert all(s.rate == 0.0 for s in samples.values())

    def test_steady_load_converges_to_instant_rate(self):
        svc, _ = table2_service(object_count=10)
        monitor = LoadMonitor(half_life=2.0)
        monitor.sample(svc, now=0.0)
        rate = 0.0
        for tick in range(1, 30):
            bump_updates(svc, "root.0", 100)
            rate = monitor.sample(svc, now=float(tick))["root.0"].rate
        assert rate == pytest.approx(100.0, rel=0.01)

    def test_idle_load_decays_by_half_life(self):
        svc, _ = table2_service(object_count=10)
        monitor = LoadMonitor(half_life=4.0)
        monitor.sample(svc, now=0.0)
        for tick in range(1, 20):
            bump_updates(svc, "root.0", 50)
            monitor.sample(svc, now=float(tick))
        hot = monitor.rate_of("root.0")
        # One idle half-life halves the rate (one big idle step).
        monitor.sample(svc, now=19.0 + 4.0)
        assert monitor.rate_of("root.0") == pytest.approx(hot / 2.0, rel=0.01)

    def test_index_sizes_reported_for_leaves(self):
        svc, homes = table2_service(object_count=40)
        monitor = LoadMonitor()
        samples = monitor.sample(svc, now=0.0)
        per_leaf = sum(s.index_size for s in samples.values())
        assert per_leaf == 40
        assert samples["root"].index_size == 0  # interior server

    def test_delta_tracks_ops_between_samples(self):
        svc, _ = table2_service(object_count=10)
        monitor = LoadMonitor()
        monitor.sample(svc, now=0.0)
        bump_updates(svc, "root.1", 7)
        samples = monitor.sample(svc, now=1.0)
        assert samples["root.1"].delta == 7
        assert samples["root.2"].delta == 0

    def test_same_instant_resample_keeps_rates(self):
        svc, _ = table2_service(object_count=10)
        monitor = LoadMonitor(half_life=2.0)
        monitor.sample(svc, now=0.0)
        bump_updates(svc, "root.0", 100)
        monitor.sample(svc, now=1.0)
        before = monitor.rate_of("root.0")
        assert before > 0.0
        # A zero-dt resample must not wipe the window.
        samples = monitor.sample(svc, now=1.0)
        assert monitor.rate_of("root.0") == before
        assert samples["root.0"].rate == before
        # The next real sample still sees the interval's ops.
        bump_updates(svc, "root.0", 100)
        assert monitor.sample(svc, now=2.0)["root.0"].delta == 100

    def test_new_and_removed_servers(self):
        svc, _ = table2_service(object_count=10)
        monitor = LoadMonitor()
        monitor.sample(svc, now=0.0)
        # Simulate a retirement: the server disappears from the live map.
        svc.servers.pop("root.3")
        samples = monitor.sample(svc, now=1.0)
        assert "root.3" not in samples
        assert monitor.rate_of("root.3") == 0.0
