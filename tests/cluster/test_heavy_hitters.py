"""Count-min + top-K heavy-hitter sketch, and its LoadMonitor lane.

The sketch bounds per-object rate tracking at 10^6 objects: the
count-min table never under-counts (every estimate is an upper bound on
the true count), the top-K candidate set finds the genuinely heavy
keys, and the ``object_rate_mode="sketch"`` monitor folds only those
into its EWMAs so memory stays constant no matter the population.
"""

import pytest

from repro.cluster import HeavyHitterSketch
from repro.cluster.load import LoadMonitor

ENGINES = [
    pytest.param(None, id="numpy"),
    pytest.param(False, id="stdlib"),
]


@pytest.fixture(params=ENGINES)
def sketch(request):
    return HeavyHitterSketch(width=1024, depth=4, top_k=8, use_numpy=request.param)


class TestCountMinProperties:
    def test_estimates_never_undercount(self, sketch):
        truth = {}
        for i in range(200):
            key = f"k{i % 37}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_light_traffic_is_exact(self, sketch):
        # Far fewer keys than buckets: collisions are unlikely enough
        # that conservative update keeps estimates exact.
        for i in range(8):
            for _ in range(i + 1):
                sketch.add(f"k{i}")
        assert {f"k{i}": i + 1 for i in range(8)} == {
            key: sketch.estimate(key) for key in (f"k{i}" for i in range(8))
        }

    def test_heavy_hitters_surface_the_top_keys(self, sketch):
        for i in range(32):
            sketch.add(f"cold{i}")
        for _ in range(50):
            sketch.add("hot-a")
        for _ in range(30):
            sketch.add("hot-b")
        hitters = sketch.heavy_hitters()
        assert len(hitters) <= 8
        assert hitters["hot-a"] >= 50
        assert hitters["hot-b"] >= 30
        assert hitters["hot-a"] >= hitters["hot-b"]

    def test_candidate_set_stays_bounded(self, sketch):
        for i in range(10_000):
            sketch.add(f"k{i}")
        assert len(sketch.heavy_hitters()) <= 8
        # The internal candidate dict is pruned at 2 * top_k.
        assert len(sketch._top) <= 16

    def test_reset_clears_counts_but_not_geometry(self, sketch):
        sketch.add("a", 5)
        before = sketch.memory_bytes()
        sketch.reset()
        assert sketch.estimate("a") == 0
        assert sketch.total == 0
        assert sketch.heavy_hitters() == {}
        assert sketch.memory_bytes() == before

    def test_memory_is_geometry_not_population(self):
        small = HeavyHitterSketch(width=1024, depth=4, top_k=8)
        for i in range(50_000):
            small.add(f"k{i}")
        assert small.memory_bytes() == small.depth * small.width * 8

    def test_width_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            HeavyHitterSketch(width=1000)


class TestVectorizedLane:
    def test_add_array_matches_scalar_totals(self):
        pytest.importorskip("numpy")
        import numpy as np

        vec = HeavyHitterSketch(width=2048, depth=4, top_k=8)
        scalar = HeavyHitterSketch(width=2048, depth=4, top_k=8)
        slots = np.array([7] * 500 + [42] * 300 + list(range(100, 160)), dtype=np.int64)
        labels = {i: f"slot-{i}" for i in set(slots.tolist())}
        vec.add_array(slots, lambda pos: [labels[int(slots[p])] for p in pos])
        for s in slots.tolist():
            scalar.add(labels[s])
        assert vec.total == scalar.total == len(slots)
        hitters = vec.heavy_hitters()
        assert hitters["slot-7"] >= 500
        assert hitters["slot-42"] >= 300
        # Heavy keys dominate the candidate set in both lanes.
        assert set(scalar.heavy_hitters()) >= {"slot-7", "slot-42"}

    def test_duplicate_heavy_key_cannot_crowd_out_others(self):
        pytest.importorskip("numpy")
        import numpy as np

        sketch = HeavyHitterSketch(width=2048, depth=4, top_k=4)
        # One key occupies 90% of the batch; the dedup in add_array must
        # still let the other heavy key into the candidate set.
        slots = np.array([1] * 900 + [2] * 90 + [3] * 10, dtype=np.int64)
        sketch.add_array(slots, lambda pos: [f"s{int(slots[p])}" for p in pos])
        hitters = sketch.heavy_hitters()
        assert hitters["s1"] >= 900
        assert hitters["s2"] >= 90


class TestLoadMonitorSketchMode:
    def make_monitor(self):
        return LoadMonitor(
            half_life=10.0,
            object_rate_mode="sketch",
            sketch_width=1024,
            sketch_depth=4,
            sketch_top_k=8,
        )

    def sample(self, monitor, now):
        from types import SimpleNamespace

        monitor.sample(SimpleNamespace(servers={}, retired_servers={}), now)

    def test_rates_memory_bounded_under_huge_population(self):
        monitor = self.make_monitor()
        self.sample(monitor, 0.0)
        for tick in range(3):
            for i in range(20_000):
                monitor.record_object_updates([f"obj-{tick * 20_000 + i}"])
            for _ in range(40):
                monitor.record_object_updates(["hot"])
            self.sample(monitor, (tick + 1) * 10.0)
        footprint = monitor.object_rate_footprint()
        assert footprint["tracked_rates"] <= 16
        assert footprint["pending_entries"] <= 16
        assert footprint["sketch_bytes"] == 4 * 1024 * 8
        assert monitor.object_rate("hot") > 0.0

    def test_exact_mode_rejects_array_lane(self):
        monitor = LoadMonitor(half_life=10.0)
        with pytest.raises(ValueError):
            monitor.record_object_updates_array([1, 2, 3], lambda pos: [])

    def test_heavy_object_rate_approximates_exact_mode(self):
        sketchy = self.make_monitor()
        exact = LoadMonitor(half_life=10.0)
        self.sample(sketchy, 0.0)
        self.sample(exact, 0.0)
        updates = ["hot"] * 60 + [f"cold-{i}" for i in range(30)]
        for monitor in (sketchy, exact):
            monitor.record_object_updates(updates)
            self.sample(monitor, 10.0)
        assert sketchy.object_rate("hot") == pytest.approx(
            exact.object_rate("hot"), rel=0.05
        )
