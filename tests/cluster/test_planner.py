"""Tests for hot/cold detection and cut-line selection."""

from repro.cluster import MergePlan, MigrationExecutor, PlannerConfig, RebalancePlanner, SplitPlan
from repro.geo import Point
from repro.model import SightingRecord
from repro.sim.scenario import table2_service


def place(svc, leaf_id: str, positions, prefix="p"):
    """Register extra objects directly at a leaf store."""
    leaf = svc.servers[leaf_id]
    for i, pos in enumerate(positions):
        oid = f"{prefix}-{i}"
        leaf.store.register(SightingRecord(oid, 0.0, pos, 10.0), 25.0, 100.0, "t", now=0.0)
        path = svc.hierarchy.path_to_root(leaf_id)
        for below, above in zip(path, path[1:]):
            svc.servers[above].visitors.insert_forward(oid, below)


class TestHotDetection:
    def test_absolute_threshold_triggers(self):
        svc, _ = table2_service(object_count=200)
        planner = RebalancePlanner(PlannerConfig(split_load=100.0))
        plans = planner.plan(svc, {"root.0": 150.0})
        assert any(isinstance(p, SplitPlan) and p.leaf_id == "root.0" for p in plans)

    def test_relative_threshold_needs_floor(self):
        svc, _ = table2_service(object_count=200)
        planner = RebalancePlanner(
            PlannerConfig(split_load=1000.0, hot_factor=3.0, hot_min_load=50.0)
        )
        # 10x over siblings but below the floor: not hot.
        assert planner.plan(svc, {"root.0": 40.0, "root.1": 4.0}) == []
        # Same skew above the floor: hot.
        plans = planner.plan(svc, {"root.0": 80.0, "root.1": 8.0})
        assert [p.leaf_id for p in plans if isinstance(p, SplitPlan)] == ["root.0"]

    def test_balanced_load_does_not_split(self):
        svc, _ = table2_service(object_count=200)
        planner = RebalancePlanner(PlannerConfig(split_load=1000.0))
        rates = {leaf: 300.0 for leaf in svc.hierarchy.leaf_ids()}
        assert planner.plan(svc, rates) == []

    def test_too_few_objects_blocks_split(self):
        svc, _ = table2_service(object_count=8)  # ~2 objects per leaf
        planner = RebalancePlanner(PlannerConfig(split_load=10.0, min_split_objects=16))
        assert planner.plan(svc, {"root.0": 1000.0}) == []


class TestCutSelection:
    def test_cut_separates_skewed_mass(self):
        svc, _ = table2_service(object_count=0)
        # Populate root.0 (area [0,750]^2) with a cluster in the far west
        # and a matching cluster in the far east: a good x-cut separates
        # them evenly; any y-cut would be lopsided at the same positions.
        west = [Point(50.0 + i % 10, 40.0 + i // 10) for i in range(30)]
        east = [Point(700.0 + i % 10, 40.0 + i // 10) for i in range(30)]
        place(svc, "root.0", west + east)
        # Pinned to binary splits: this test is about the *cut line*, so
        # the k-way fan-out (covered by the planner-v2 tests) is off.
        planner = RebalancePlanner(
            PlannerConfig(split_load=10.0, max_split_children=2)
        )
        plans = planner.plan(svc, {"root.0": 100.0})
        assert len(plans) == 1
        plan = plans[0]
        assert isinstance(plan, SplitPlan)
        assert plan.axis == "x"
        assert 60.0 < plan.cut < 700.0
        low, high = (area for _, area in plan.children)
        # Children tile the leaf area.
        assert low.union_bounds(high) == svc.hierarchy.config("root.0").area
        assert low.intersection_area(high) == 0.0

    def test_degenerate_population_yields_no_plan(self):
        svc, _ = table2_service(object_count=0)
        # Every object on one point: no cut can move anything.
        place(svc, "root.0", [Point(10.0, 10.0)] * 40)
        planner = RebalancePlanner(PlannerConfig(split_load=10.0))
        assert planner.plan(svc, {"root.0": 100.0}) == []

    def test_child_ids_avoid_live_and_retired(self):
        svc, _ = table2_service(object_count=400)
        planner = RebalancePlanner(PlannerConfig(split_load=10.0))
        executor = MigrationExecutor(svc)
        plans = planner.plan(svc, {"root.0": 100.0})
        executor.execute_all(plans)
        first_ids = {cid for cid, _ in plans[0].children}
        # Merge back: children retire but their ids stay taken.
        executor.execute(MergePlan(parent_id="root.0", children=tuple(sorted(first_ids))))
        replans = planner.plan(svc, {"root.0": 100.0})
        assert len(replans) == 1
        new_ids = {cid for cid, _ in replans[0].children}
        assert new_ids.isdisjoint(first_ids)


class TestMergeDetection:
    def _split_then_cool(self, svc, planner, executor):
        plans = planner.plan(svc, {"root.0": 1000.0})
        executor.execute_all(plans)
        return plans[0]

    def test_cold_siblings_merge_after_cooldown(self):
        svc, _ = table2_service(object_count=400)
        planner = RebalancePlanner(
            PlannerConfig(split_load=100.0, merge_load=50.0, merge_cooldown=10.0)
        )
        executor = MigrationExecutor(svc)
        split = self._split_then_cool(svc, planner, executor)
        child_ids = tuple(cid for cid, _ in split.children)
        # Children were born at now=0; within the cooldown no merge...
        assert planner.plan(svc, {}) == []
        # ...after it, the cold sibling set folds back.
        svc.run(_sleep(svc, 11.0))
        plans = planner.plan(svc, {})
        merges = [p for p in plans if isinstance(p, MergePlan)]
        assert len(merges) == 1
        assert merges[0].parent_id == "root.0"
        assert set(merges[0].children) == set(child_ids)

    def test_loaded_siblings_do_not_merge(self):
        svc, _ = table2_service(object_count=400)
        planner = RebalancePlanner(
            PlannerConfig(split_load=100.0, merge_load=50.0, merge_cooldown=0.0)
        )
        executor = MigrationExecutor(svc)
        split = self._split_then_cool(svc, planner, executor)
        child_ids = [cid for cid, _ in split.children]
        rates = {cid: 40.0 for cid in child_ids}  # total 80 > merge_load
        assert [p for p in planner.plan(svc, rates) if isinstance(p, MergePlan)] == []

    def test_root_children_never_merge(self):
        svc, _ = table2_service(object_count=100)
        planner = RebalancePlanner(PlannerConfig(merge_load=1e9, merge_cooldown=0.0))
        assert planner.plan(svc, {}) == []


async def _sleep(svc, dt):
    await svc.loop.sleep(dt)
