"""The README's public-API promises, verified.

Everything the README and the package docstring show must work through
top-level imports alone.
"""

import repro
from repro import (
    AccuracyModel,
    CacheConfig,
    LocationService,
    Point,
    Rect,
    build_table2_hierarchy,
)


class TestQuickstartContract:
    def test_readme_quickstart(self):
        svc = LocationService(build_table2_hierarchy(side_m=1500.0))
        taxi = svc.register("taxi-7", Point(200, 300), des_acc=25.0, min_acc=100.0)
        svc.update(taxi, Point(900, 350))
        ld = svc.pos_query("taxi-7")
        assert ld.pos == Point(900, 350)
        answer = svc.range_query(Rect(750, 0, 1500, 1500), req_acc=50.0, req_overlap=0.3)
        assert "taxi-7" in {oid for oid, _ in answer.entries}
        nn = svc.neighbor_query(Point(450, 880), req_acc=50.0, near_qual=100.0)
        assert nn.result.nearest[0] == "taxi-7"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_exports_resolve(self):
        import repro.baselines
        import repro.chaos
        import repro.core
        import repro.geo
        import repro.model
        import repro.net
        import repro.protocols
        import repro.runtime
        import repro.sim
        import repro.spatial
        import repro.storage

        for module in (
            repro.baselines,
            repro.chaos,
            repro.core,
            repro.geo,
            repro.model,
            repro.net,
            repro.protocols,
            repro.runtime,
            repro.sim,
            repro.spatial,
            repro.storage,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, f"{module.__name__}.{name}"

    def test_cache_and_accuracy_configuration(self):
        svc = LocationService(
            build_table2_hierarchy(),
            accuracy=AccuracyModel(sensor_floor=5.0, update_slack=5.0),
            cache_config=CacheConfig.all_enabled(),
        )
        obj = svc.register("o", Point(10, 10), des_acc=10.0, min_acc=50.0)
        assert obj.offered_acc == 10.0
