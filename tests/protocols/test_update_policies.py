"""Tests for the update-reporting policies ([15], Section 6.2)."""

import pytest

from repro.geo import Point, Rect
from repro.protocols import (
    DeadReckoningPolicy,
    DistancePolicy,
    TimePolicy,
    simulate_policy,
)
from repro.sim.mobility import RandomWaypointWalker


def linear_trajectory(speed=2.0, duration=100.0, dt=1.0):
    return [(t * dt, Point(t * dt * speed, 0.0)) for t in range(int(duration / dt) + 1)]


class TestTimePolicy:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TimePolicy(0.0)

    def test_reports_at_fixed_interval(self):
        policy = TimePolicy(interval=10.0)
        result = simulate_policy(policy, linear_trajectory(duration=100.0))
        # t=0 plus every 10 s.
        assert result["updates"] == 11

    def test_reports_even_when_stationary(self):
        policy = TimePolicy(interval=10.0)
        trajectory = [(float(t), Point(0, 0)) for t in range(101)]
        result = simulate_policy(policy, trajectory)
        assert result["updates"] == 11


class TestDistancePolicy:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DistancePolicy(-1.0)

    def test_reports_on_drift(self):
        policy = DistancePolicy(threshold=25.0)
        result = simulate_policy(policy, linear_trajectory(speed=2.0, duration=100.0))
        # 200 m of travel at 25 m threshold: ~8 reports plus the first.
        assert 7 <= result["updates"] <= 10
        assert result["max_deviation"] <= 25.0 + 2.0  # threshold + one step

    def test_no_reports_when_stationary(self):
        policy = DistancePolicy(threshold=25.0)
        trajectory = [(float(t), Point(0, 0)) for t in range(100)]
        result = simulate_policy(policy, trajectory)
        assert result["updates"] == 1  # only the initial report

    def test_deviation_bounded_by_threshold(self):
        walker = RandomWaypointWalker(
            Rect(0, 0, 1000, 1000), seed=3, min_speed=1.0, max_speed=3.0
        )
        trajectory = walker.trajectory(duration=500.0, dt=1.0)
        policy = DistancePolicy(threshold=30.0)
        result = simulate_policy(policy, trajectory)
        # Between samples the object can exceed the threshold by at most
        # one step's travel (3 m/s * 1 s).
        assert result["max_deviation"] <= 33.0


class TestDeadReckoning:
    def test_linear_motion_needs_few_updates(self):
        # Perfectly linear motion: after the second report the velocity
        # estimate is exact, so no further updates are ever needed.
        policy = DeadReckoningPolicy(threshold=25.0)
        result = simulate_policy(policy, linear_trajectory(speed=2.0, duration=500.0))
        distance_result = simulate_policy(
            DistancePolicy(threshold=25.0), linear_trajectory(speed=2.0, duration=500.0)
        )
        assert result["updates"] <= 3
        assert distance_result["updates"] > 10 * result["updates"]

    def test_turning_motion_triggers_updates(self):
        # A sharp turn invalidates the extrapolation.
        out = [(float(t), Point(2.0 * t, 0.0)) for t in range(51)]
        back = [(50.0 + t, Point(100.0 - 2.0 * t, 0.0)) for t in range(1, 51)]
        policy = DeadReckoningPolicy(threshold=10.0)
        result = simulate_policy(policy, out + back)
        assert result["updates"] >= 3

    def test_deviation_bounded(self):
        walker = RandomWaypointWalker(
            Rect(0, 0, 1000, 1000), seed=5, min_speed=1.0, max_speed=3.0
        )
        trajectory = walker.trajectory(duration=300.0, dt=1.0)
        policy = DeadReckoningPolicy(threshold=30.0)
        result = simulate_policy(policy, trajectory)
        # Extrapolation drift between samples: threshold + one step at
        # (true + estimated) speed.
        assert result["max_deviation"] <= 30.0 + 6.0 + 1e-6


class TestPolicyComparison:
    def test_dead_reckoning_beats_distance_on_waypoint_motion(self):
        """The DOMINO trade-off: fewer updates at comparable accuracy."""
        area = Rect(0, 0, 2000, 2000)
        totals = {"distance": 0, "dead_reckoning": 0}
        for seed in range(5):
            walker = RandomWaypointWalker(area, seed=seed, min_speed=1.0, max_speed=2.0)
            trajectory = walker.trajectory(duration=600.0, dt=1.0)
            totals["distance"] += simulate_policy(
                DistancePolicy(threshold=25.0), trajectory
            )["updates"]
            walker2 = RandomWaypointWalker(area, seed=seed, min_speed=1.0, max_speed=2.0)
            trajectory2 = walker2.trajectory(duration=600.0, dt=1.0)
            totals["dead_reckoning"] += simulate_policy(
                DeadReckoningPolicy(threshold=25.0), trajectory2
            )["updates"]
        assert totals["dead_reckoning"] < totals["distance"]
