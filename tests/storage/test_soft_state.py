"""Tests for the soft-state expiry timer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage import ExpiryTimer


class TestExpiryTimer:
    def test_empty(self):
        timer = ExpiryTimer()
        assert len(timer) == 0
        assert timer.next_deadline() is None
        assert timer.pop_expired(1e9) == []

    def test_schedule_and_expire(self):
        timer = ExpiryTimer()
        timer.schedule("a", 10.0)
        timer.schedule("b", 20.0)
        assert timer.next_deadline() == 10.0
        assert timer.pop_expired(10.0) == ["a"]
        assert timer.pop_expired(19.9) == []
        assert timer.pop_expired(20.0) == ["b"]
        assert len(timer) == 0

    def test_renew_extends_deadline(self):
        timer = ExpiryTimer()
        timer.schedule("a", 10.0)
        timer.renew("a", 30.0)
        assert timer.pop_expired(10.0) == []
        assert timer.deadline_of("a") == 30.0
        assert timer.pop_expired(30.0) == ["a"]

    def test_renew_can_shorten(self):
        timer = ExpiryTimer()
        timer.schedule("a", 100.0)
        timer.renew("a", 5.0)
        assert timer.pop_expired(5.0) == ["a"]

    def test_cancel(self):
        timer = ExpiryTimer()
        timer.schedule("a", 10.0)
        timer.cancel("a")
        assert "a" not in timer
        assert timer.pop_expired(100.0) == []

    def test_cancel_unknown_is_noop(self):
        ExpiryTimer().cancel("ghost")

    def test_pop_order_is_deadline_order(self):
        timer = ExpiryTimer()
        timer.schedule("late", 30.0)
        timer.schedule("early", 10.0)
        timer.schedule("mid", 20.0)
        assert timer.pop_expired(100.0) == ["early", "mid", "late"]

    def test_stale_entries_skipped_in_next_deadline(self):
        timer = ExpiryTimer()
        timer.schedule("a", 5.0)
        timer.renew("a", 50.0)
        timer.schedule("b", 20.0)
        assert timer.next_deadline() == 20.0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["k1", "k2", "k3", "k4"]),
                st.floats(min_value=0, max_value=1000, allow_nan=False),
            ),
            max_size=50,
        ),
        st.floats(min_value=0, max_value=1000, allow_nan=False),
    )
    def test_matches_reference_model(self, operations, now):
        """The lazy heap behaves like a plain dict of deadlines."""
        timer = ExpiryTimer()
        model: dict[str, float] = {}
        for key, deadline in operations:
            timer.schedule(key, deadline)
            model[key] = deadline
        expired = timer.pop_expired(now)
        expected = {k for k, d in model.items() if d <= now}
        assert set(expired) == expected
        # Expired keys are gone; survivors keep their deadlines.
        for key, deadline in model.items():
            if deadline <= now:
                assert key not in timer
            else:
                assert timer.deadline_of(key) == deadline
