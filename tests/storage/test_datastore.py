"""Tests for the per-server data-storage component (Fig. 7)."""

import pytest

from repro.errors import AccuracyUnavailableError, UnknownObjectError
from repro.geo import Point, Rect
from repro.model import (
    AccuracyModel,
    NearestNeighborQuery,
    RangeQuery,
    RegistrationInfo,
    SightingRecord,
)
from repro.storage import LocalDataStore


def sighting(oid, x, y, t=0.0, acc=5.0):
    return SightingRecord(oid, t, Point(x, y), acc)


def make_store(**kwargs):
    return LocalDataStore(
        accuracy=AccuracyModel(sensor_floor=10.0, update_slack=5.0), **kwargs
    )


class TestRegistration:
    def test_register_returns_offered_acc(self):
        store = make_store()
        offered = store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        assert offered == 20.0
        assert store.visitor_count == 1
        assert store.sighting_count == 1

    def test_register_clamps_to_achievable(self):
        store = make_store()
        assert store.register(sighting("a", 1, 1), 1.0, 100.0, "client") == 15.0

    def test_register_rejects_unachievable(self):
        store = make_store()
        with pytest.raises(AccuracyUnavailableError):
            store.register(sighting("a", 1, 1), 1.0, 5.0, "client")
        assert store.visitor_count == 0

    def test_deregister(self):
        store = make_store()
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        store.deregister("a")
        assert store.visitor_count == 0
        with pytest.raises(UnknownObjectError):
            store.position_query("a")

    def test_change_accuracy(self):
        store = make_store()
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        assert store.change_accuracy("a", 30.0, 100.0) == 30.0
        assert store.position_query("a").acc == 30.0

    def test_change_accuracy_unknown(self):
        with pytest.raises(UnknownObjectError):
            make_store().change_accuracy("ghost", 10.0, 20.0)

    def test_admit_handover_uses_reg_info(self):
        store = make_store()
        reg = RegistrationInfo("client", des_acc=25.0, min_acc=80.0)
        offered = store.admit_handover(sighting("a", 1, 1), reg)
        assert offered == 25.0
        assert store.visitors.leaf_record("a").reg_info == reg


class TestUpdatesAndQueries:
    def test_update_then_query(self):
        store = make_store()
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        store.update(sighting("a", 9, 9, t=1.0))
        ld = store.position_query("a")
        assert ld.pos == Point(9, 9)
        assert ld.acc == 20.0

    def test_update_unregistered_raises(self):
        with pytest.raises(UnknownObjectError):
            make_store().update(sighting("ghost", 0, 0))

    def test_position_query_unknown_raises(self):
        with pytest.raises(UnknownObjectError):
            make_store().position_query("ghost")

    def test_range_query_uses_offered_acc(self):
        store = make_store()
        store.register(sighting("inside", 50, 50), 20.0, 100.0, "client")
        store.register(sighting("outside", 500, 500), 20.0, 100.0, "client")
        result = store.range_query(
            RangeQuery(Rect(0, 0, 100, 100), req_acc=50.0, req_overlap=0.5)
        )
        assert [oid for oid, _ in result] == ["inside"]
        assert result[0][1].acc == 20.0

    def test_range_query_accuracy_threshold(self):
        store = make_store()
        store.register(sighting("coarse", 50, 50), 60.0, 100.0, "client")
        result = store.range_query(
            RangeQuery(Rect(0, 0, 100, 100), req_acc=30.0, req_overlap=0.5)
        )
        assert result == []

    def test_nearest_neighbor(self):
        store = make_store()
        store.register(sighting("near", 10, 0), 20.0, 100.0, "client")
        store.register(sighting("far", 100, 0), 20.0, 100.0, "client")
        result = store.nearest_neighbor_query(
            NearestNeighborQuery(Point(0, 0), req_acc=50.0)
        )
        assert result.nearest[0] == "near"


class TestSoftStateAndRecovery:
    def test_expiry_deregisters(self):
        store = LocalDataStore(ttl=60.0)
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client", now=0.0)
        assert store.expire_due(60.0) == ["a"]
        assert store.visitor_count == 0

    def test_updates_keep_object_alive(self):
        store = LocalDataStore(ttl=60.0)
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client", now=0.0)
        for t in (30.0, 60.0, 90.0):
            store.update(sighting("a", 1, 1, t=t), now=t)
        assert store.expire_due(100.0) == []
        assert store.expire_due(150.0) == ["a"]

    def test_crash_loses_sightings_keeps_visitors(self):
        """Fig. 7 / Section 5: volatile vs. persistent split."""
        store = make_store()
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        store.crash()
        assert store.sighting_count == 0
        assert store.visitor_count == 1  # forwarding path survived

    def test_restore_sighting_after_crash(self):
        store = make_store()
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        store.crash()
        # The periodic position update re-populates volatile state.
        assert store.restore_sighting(sighting("a", 2, 2, t=10.0), now=10.0)
        ld = store.position_query("a")
        assert ld.pos == Point(2, 2)
        assert ld.acc == 20.0  # negotiated accuracy survived the crash

    def test_restore_rejects_unregistered(self):
        store = make_store()
        assert not store.restore_sighting(sighting("ghost", 0, 0))

    def test_index_rebuilt_after_crash(self):
        store = make_store()
        for i in range(20):
            store.register(sighting(f"o{i}", i * 10.0, 0.0), 15.0, 100.0, "client")
        store.crash()
        for i in range(20):
            store.restore_sighting(sighting(f"o{i}", i * 10.0, 0.0, t=5.0), now=5.0)
        # Offered acc is 15 m; objects sit on the rect's bottom edge, so at
        # most half of each disk can overlap.  With threshold 0.4 the
        # qualifying objects are those at x = 10..80 (x=0 is a quarter disk
        # ≈ 0.25, x=90 is clipped at the x=95 edge to ≈ 0.35): exactly 8.
        result = store.range_query(
            RangeQuery(Rect(0, 0, 95, 40), req_acc=50.0, req_overlap=0.4)
        )
        assert len(result) == 8


class TestBatchUpdates:
    def test_update_many_requires_registration(self):
        store = make_store()
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        with pytest.raises(UnknownObjectError):
            store.update_many([sighting("a", 2, 2), sighting("ghost", 3, 3)])
        # Validation is all-or-nothing: "a" did not move.
        assert store.position_query("a").pos == Point(1, 1)

    def test_update_many_moves_batch(self):
        store = make_store()
        for i in range(10):
            store.register(sighting(f"o{i}", i, i), 20.0, 100.0, "client")
        store.update_many([sighting(f"o{i}", i + 100.0, i + 100.0, t=1.0) for i in range(10)], now=1.0)
        assert store.position_query("o7").pos == Point(107, 107)
        entries = store.range_query(
            RangeQuery(Rect(60, 60, 160, 160), req_acc=50.0, req_overlap=0.5)
        )
        assert {oid for oid, _ in entries} == {f"o{i}" for i in range(10)}

    def test_update_many_recreates_sightings_after_crash(self):
        """Batched updates share the paper's recovery semantics: a
        registered visitor whose volatile sighting was lost gets it back."""
        store = make_store()
        store.register(sighting("a", 1, 1), 20.0, 100.0, "client")
        store.register(sighting("b", 2, 2), 20.0, 100.0, "client")
        store.crash(now=10.0)
        assert store.sighting_count == 0
        store.update_many([sighting("a", 5, 5, t=11.0), sighting("b", 6, 6, t=11.0)], now=11.0)
        assert store.sighting_count == 2
        assert store.position_query("b").pos == Point(6, 6)
