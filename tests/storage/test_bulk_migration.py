"""Tests for the storage-layer bulk paths the migration executor uses."""

import pytest

from repro.geo import Point, Rect
from repro.model import RangeQuery, RegistrationInfo, SightingRecord
from repro.storage import LocalDataStore
from repro.storage.sighting_db import SightingDB
from repro.storage.visitor_db import VisitorDB


def sighting(oid: str, x: float, y: float) -> SightingRecord:
    return SightingRecord(oid, 0.0, Point(x, y), 10.0)


class TestVisitorBulk:
    def test_insert_forward_many_matches_singles(self):
        a, b = VisitorDB(), VisitorDB()
        refs = [(f"o{i}", f"child-{i % 3}") for i in range(20)]
        a.insert_forward_many(refs)
        for oid, ref in refs:
            b.insert_forward(oid, ref)
        assert {oid: a.forward_ref(oid) for oid, _ in refs} == {
            oid: b.forward_ref(oid) for oid, _ in refs
        }

    def test_leaf_records_iterates_only_leaf_entries(self):
        db = VisitorDB()
        db.insert_forward("fwd", "child")
        db.insert_leaf("agent", 25.0, RegistrationInfo("r", 25.0, 100.0))
        records = list(db.leaf_records())
        assert [r.object_id for r in records] == ["agent"]


class TestSightingBulk:
    def test_bulk_insert_rejects_duplicates_upfront(self):
        db = SightingDB()
        db.insert(sighting("dup", 1, 1))
        with pytest.raises(KeyError):
            db.bulk_insert([sighting("new", 2, 2), sighting("dup", 3, 3)])
        assert "new" not in db  # nothing applied

    def test_bulk_insert_schedules_expiry(self):
        db = SightingDB(default_ttl=10.0)
        db.bulk_insert([sighting(f"o{i}", i, i) for i in range(5)], now=0.0)
        assert len(db) == 5
        assert db.expire_due(11.0) != []
        assert len(db) == 0

    def test_counts_in_rects_matches_scans(self):
        db = SightingDB()
        db.bulk_insert([sighting(f"o{i}", i * 10.0, i * 10.0) for i in range(10)])
        rects = [Rect(0, 0, 45, 45), Rect(50, 50, 100, 100), Rect(200, 200, 300, 300)]
        assert db.counts_in_rects(rects) == [
            len(list(db.positions_in_rect(r))) for r in rects
        ]


class TestDataStoreBulk:
    def populate(self, count=12) -> LocalDataStore:
        store = LocalDataStore()
        for i in range(count):
            store.register(sighting(f"o{i}", i * 5.0, i * 5.0), 25.0, 100.0, "t", now=0.0)
        return store

    def test_export_and_bulk_admit_round_trip(self):
        source = self.populate()
        entries = source.export_leaf_entries()
        assert len(entries) == 12
        dest = LocalDataStore()
        dest.bulk_admit(entries, now=1.0)
        assert dest.visitor_count == 12
        assert dest.sighting_count == 12
        for s, offered, reg in entries:
            assert dest.offered_acc(s.object_id) == offered
            assert dest.position_query(s.object_id).pos == s.pos

    def test_bulk_admit_duplicate_leaves_no_half_state(self):
        source = self.populate(4)
        dest = LocalDataStore()
        dest.register(sighting("o2", 99.0, 99.0), 25.0, 100.0, "t", now=0.0)
        with pytest.raises(KeyError):
            dest.bulk_admit(source.export_leaf_entries(), now=1.0)
        # Nothing from the failed batch was admitted: no visitor record
        # without a backing sighting.
        assert dest.visitor_count == 1
        assert dest.sighting_count == 1

    def test_export_skips_lapsed_sightings(self):
        source = self.populate()
        source.sightings.remove("o3")  # visitor record remains
        entries = source.export_leaf_entries()
        assert all(s.object_id != "o3" for s, _, _ in entries)
        assert len(entries) == 11

    def test_range_query_many_matches_singles(self):
        store = self.populate(20)
        queries = [
            RangeQuery(Rect(0, 0, 30, 30), req_acc=100.0, req_overlap=0.5),
            RangeQuery(Rect(40, 40, 95, 95), req_acc=100.0, req_overlap=0.5),
            RangeQuery(Rect(500, 500, 600, 600), req_acc=100.0, req_overlap=0.5),
        ]
        assert store.range_query_many(queries) == [
            store.range_query(q) for q in queries
        ]
