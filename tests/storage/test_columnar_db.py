"""ColumnarSightingDB: the SightingDB contract over columnar storage.

The class stores every sighting as five float64 column entries (x, y,
t, acc, deadline) behind a :class:`~repro.spatial.ColumnarIndex`
instead of one ``SightingRecord`` per object, and replaces the expiry
heap with a deadline column swept vectorized.  These tests pin the
record round-trip, the soft-state semantics, the vectorized fast lane
and the handle-staleness contract — on both storage engines.
"""

import pytest

from repro.errors import StorageError
from repro.geo import Point, Rect
from repro.model import NearestNeighborQuery, SightingRecord
from repro.spatial import ColumnarIndex, StaleHandleError
from repro.storage import ColumnarSightingDB, SightingDB


def sighting(oid, x, y, t=0.0, acc=5.0):
    return SightingRecord(oid, t, Point(x, y), acc)


ENGINES = [
    pytest.param(None, id="numpy"),
    pytest.param(False, id="stdlib"),
]


@pytest.fixture(params=ENGINES)
def db(request):
    return ColumnarSightingDB(
        index=ColumnarIndex(capacity=4, use_numpy=request.param), default_ttl=100.0
    )


class TestRecordRoundTrip:
    def test_insert_materializes_identical_record(self, db):
        db.insert(sighting("a", 1.5, 2.5, t=3.0, acc=7.5))
        rec = db.get("a")
        assert rec == SightingRecord("a", 3.0, Point(1.5, 2.5), 7.5)
        assert "a" in db and len(db) == 1

    def test_duplicate_insert_raises(self, db):
        db.insert(sighting("a", 1, 2))
        with pytest.raises(KeyError):
            db.insert(sighting("a", 3, 4))

    def test_update_unknown_raises(self, db):
        with pytest.raises(KeyError):
            db.update(sighting("ghost", 0, 0))

    def test_remove_returns_the_record(self, db):
        db.insert(sighting("a", 1, 2, t=4.0, acc=9.0))
        removed = db.remove("a")
        assert removed == SightingRecord("a", 4.0, Point(1.0, 2.0), 9.0)
        assert len(db) == 0
        assert db.get("a") is None

    def test_records_iterates_live_rows_only(self, db):
        for i in range(5):
            db.insert(sighting(f"o{i}", float(i), 0.0))
        db.remove("o2")
        assert {r.object_id for r in db.records()} == {"o0", "o1", "o3", "o4"}
        assert sorted(db.object_ids()) == ["o0", "o1", "o3", "o4"]

    def test_rejects_non_columnar_index(self):
        from repro.spatial import GridIndex

        with pytest.raises(StorageError):
            ColumnarSightingDB(index=GridIndex(cell_size=10.0))


class TestSoftState:
    def test_expire_due_sweeps_past_deadlines(self, db):
        db.insert(sighting("fast", 0, 0), now=0.0, ttl=10.0)
        db.insert(sighting("slow", 1, 1), now=0.0, ttl=50.0)
        assert db.expire_due(5.0) == []
        assert sorted(db.expire_due(20.0)) == ["fast"]
        assert db.get("fast") is None
        assert db.get("slow") is not None
        assert db.expire_due(60.0) == ["slow"]

    def test_update_renews_the_deadline(self, db):
        db.insert(sighting("a", 0, 0), now=0.0, ttl=10.0)
        db.update(sighting("a", 1, 1, t=8.0), now=8.0, ttl=10.0)
        assert db.expire_due(15.0) == []
        assert db.expire_due(20.0) == ["a"]

    def test_next_expiry_tracks_the_minimum(self, db):
        assert db.next_expiry() is None
        db.insert(sighting("a", 0, 0), now=0.0, ttl=30.0)
        db.insert(sighting("b", 1, 1), now=0.0, ttl=10.0)
        assert db.next_expiry() == pytest.approx(10.0)
        db.remove("b")
        assert db.next_expiry() == pytest.approx(30.0)

    def test_schedule_expiry_for_slotless_id_survives(self, db):
        # Crash recovery replays expiry schedules before reinserting the
        # records; a deadline for an id with no slot must not be lost.
        db.schedule_expiry("ghost", now=0.0, ttl=5.0)
        assert db.next_expiry() == pytest.approx(5.0)
        assert db.expire_due(6.0) == ["ghost"]
        assert db.expire_due(6.0) == []


class TestVectorizedLane:
    def test_bulk_insert_arrays_then_scatter(self, db):
        ids = [f"o{i}" for i in range(6)]
        handle = db.bulk_insert_arrays(
            ids, [float(i) for i in range(6)], [0.0] * 6, now=0.0, acc=5.0, ttl=50.0
        )
        assert len(db) == 6
        db.update_positions(
            handle, [float(i) + 0.5 for i in range(6)], [9.0] * 6, now=10.0
        )
        rec = db.get("o3")
        assert rec.pos == Point(3.5, 9.0)
        assert rec.timestamp == 10.0
        # The scatter renewed every deadline from now=10 at default_ttl.
        assert db.expire_due(109.0) == []
        assert sorted(db.expire_due(111.0)) == sorted(ids)

    def test_handle_goes_stale_after_remove(self, db):
        db.insert(sighting("a", 0, 0))
        db.insert(sighting("b", 1, 1))
        handle = db.resolve_handle(["a", "b"])
        db.remove("b")
        with pytest.raises(StaleHandleError):
            db.update_positions(handle, [5.0, 6.0], [5.0, 6.0], now=1.0)

    def test_counts_in_rects_matches_object_db(self, db):
        oracle = SightingDB()
        for i in range(20):
            rec = sighting(f"o{i}", float(i * 7 % 50), float(i * 13 % 50))
            db.insert(rec)
            oracle.insert(rec)
        rects = [Rect(0, 0, 25, 25), Rect(25, 25, 50, 50), Rect(10, 0, 30, 50)]
        assert db.counts_in_rects(rects) == oracle.counts_in_rects(rects)

    def test_nearest_neighbors_inherited_path(self, db):
        for i in range(9):
            db.insert(sighting(f"o{i}", float(i % 3) * 10, float(i // 3) * 10))
        oracle = SightingDB()
        for rec in db.records():
            oracle.insert(rec)
        query = NearestNeighborQuery(Point(1.0, 1.0), req_acc=50.0, near_qual=30.0)
        got = db.nearest_neighbors(query, lambda oid: 10.0)
        expected = oracle.nearest_neighbors(query, lambda oid: 10.0)
        assert got == expected
        assert got.nearest is not None and got.nearest[0] == "o0"
