"""Tests for the main-memory sighting database."""

import pytest

from repro.geo import Point, Rect
from repro.model import NearestNeighborQuery, RangeQuery, SightingRecord
from repro.spatial import GridIndex, LinearScanIndex
from repro.storage import SightingDB


def sighting(oid, x, y, t=0.0, acc=5.0):
    return SightingRecord(oid, t, Point(x, y), acc)


UNIFORM_ACC = lambda oid: 10.0


class TestCrud:
    def test_insert_get(self):
        db = SightingDB()
        db.insert(sighting("a", 1, 2))
        assert db.get("a").pos == Point(1, 2)
        assert "a" in db
        assert len(db) == 1

    def test_duplicate_insert_raises(self):
        db = SightingDB()
        db.insert(sighting("a", 1, 2))
        with pytest.raises(KeyError):
            db.insert(sighting("a", 3, 4))

    def test_update_moves(self):
        db = SightingDB()
        db.insert(sighting("a", 1, 2))
        db.update(sighting("a", 50, 60, t=1.0))
        assert db.get("a").pos == Point(50, 60)
        assert len(db) == 1

    def test_update_unknown_raises(self):
        with pytest.raises(KeyError):
            SightingDB().update(sighting("ghost", 0, 0))

    def test_upsert(self):
        db = SightingDB()
        db.upsert(sighting("a", 1, 1))
        db.upsert(sighting("a", 2, 2))
        assert db.get("a").pos == Point(2, 2)

    def test_remove(self):
        db = SightingDB()
        db.insert(sighting("a", 1, 2))
        removed = db.remove("a")
        assert removed.object_id == "a"
        assert len(db) == 0

    def test_custom_index(self):
        db = SightingDB(index=GridIndex(cell_size=10.0))
        db.insert(sighting("a", 5, 5))
        # acc 10 around (5,5) vs the 10x10 rect: overlap ≈ 100/314 ≈ 0.3.
        result = db.objects_in_area(
            RangeQuery(Rect(0, 0, 10, 10), req_acc=50, req_overlap=0.2), UNIFORM_ACC
        )
        assert [oid for oid, _ in result] == ["a"]


class TestQueries:
    def setup_method(self):
        self.db = SightingDB()
        # A 3x3 grid of objects, 100 m apart.
        for row in range(3):
            for col in range(3):
                self.db.insert(sighting(f"o{row}{col}", col * 100.0, row * 100.0))

    def test_objects_in_area(self):
        result = self.db.objects_in_area(
            RangeQuery(Rect(-10, -10, 110, 110), req_acc=50, req_overlap=0.5),
            UNIFORM_ACC,
        )
        assert {oid for oid, _ in result} == {"o00", "o01", "o10", "o11"}

    def test_objects_in_area_uses_offered_acc(self):
        # The overlap is computed with the *offered* accuracy.  With a
        # tight accuracy o00 overlaps the area fully and qualifies; with a
        # coarse 500 m accuracy its location area dwarfs the queried area
        # and the 0.5 overlap threshold rejects it.
        area = RangeQuery(Rect(-10, -10, 50, 50), req_acc=1000, req_overlap=0.5)
        tight = self.db.objects_in_area(area, lambda oid: 10.0)
        assert "o00" in {oid for oid, _ in tight}
        coarse = self.db.objects_in_area(area, lambda oid: 500.0)
        assert coarse == []

    def test_objects_in_area_unbounded_acc_scans_all(self):
        result = self.db.objects_in_area(
            RangeQuery(Rect(-1000, -1000, 1000, 1000), req_overlap=0.5), UNIFORM_ACC
        )
        assert len(result) == 9

    def test_descriptor_carries_offered_acc(self):
        acc_of = lambda oid: 42.0
        result = self.db.objects_in_area(
            RangeQuery(Rect(-10, -10, 110, 110), req_acc=50, req_overlap=0.5), acc_of
        )
        assert all(descriptor.acc == 42.0 for _, descriptor in result)

    def test_nearest_neighbors(self):
        result = self.db.nearest_neighbors(
            NearestNeighborQuery(Point(10, 10), req_acc=50.0), UNIFORM_ACC
        )
        assert result.nearest[0] == "o00"

    def test_nearest_neighbors_empty_db(self):
        empty = SightingDB()
        result = empty.nearest_neighbors(
            NearestNeighborQuery(Point(0, 0)), UNIFORM_ACC
        )
        assert result.nearest is None

    def test_nearest_neighbors_accuracy_filter_forces_expansion(self):
        # The 4 objects closest to the probe have disqualifying accuracy;
        # the probe loop must widen beyond its initial k to find o22.
        acc_of = lambda oid: 999.0 if oid != "o22" else 10.0
        result = self.db.nearest_neighbors(
            NearestNeighborQuery(Point(0, 0), req_acc=50.0), acc_of, probe_k=2
        )
        assert result.nearest[0] == "o22"

    def test_near_set_ring(self):
        result = self.db.nearest_neighbors(
            NearestNeighborQuery(Point(10, 10), req_acc=50.0, near_qual=200.0),
            UNIFORM_ACC,
            probe_k=2,
        )
        # Ring = dist(o00) + 200 ≈ 214.1 m from (10,10).  Every grid object
        # is within the ring except o22 at (200,200), distance ≈ 268.7.
        near_ids = {oid for oid, _ in result.near_set}
        assert near_ids == {"o01", "o10", "o11", "o02", "o20", "o12", "o21"}

    def test_matches_linear_index(self):
        linear = SightingDB(index=LinearScanIndex())
        for record in self.db.records():
            linear.insert(record)
        query = RangeQuery(Rect(50, 50, 250, 250), req_acc=50, req_overlap=0.3)
        assert self.db.objects_in_area(query, UNIFORM_ACC) == linear.objects_in_area(
            query, UNIFORM_ACC
        )


class TestSoftState:
    def test_expiry_removes_records(self):
        db = SightingDB(default_ttl=60.0)
        db.insert(sighting("a", 0, 0), now=0.0)
        db.insert(sighting("b", 1, 1), now=30.0)
        expired = db.expire_due(60.0)
        assert expired == ["a"]
        assert "a" not in db
        assert "b" in db

    def test_update_renews_ttl(self):
        db = SightingDB(default_ttl=60.0)
        db.insert(sighting("a", 0, 0), now=0.0)
        db.update(sighting("a", 1, 1, t=50.0), now=50.0)
        assert db.expire_due(60.0) == []
        assert db.expire_due(110.0) == ["a"]

    def test_explicit_ttl(self):
        db = SightingDB(default_ttl=60.0)
        db.insert(sighting("a", 0, 0), now=0.0, ttl=5.0)
        assert db.expire_due(5.0) == ["a"]

    def test_next_expiry(self):
        db = SightingDB(default_ttl=60.0)
        assert db.next_expiry() is None
        db.insert(sighting("a", 0, 0), now=10.0)
        assert db.next_expiry() == 70.0

    def test_expired_objects_leave_spatial_index(self):
        db = SightingDB(default_ttl=10.0)
        db.insert(sighting("a", 5, 5), now=0.0)
        db.expire_due(100.0)
        result = db.objects_in_area(
            RangeQuery(Rect(0, 0, 10, 10), req_acc=50, req_overlap=0.1), UNIFORM_ACC
        )
        assert result == []

    def test_clear_wipes_everything(self):
        db = SightingDB()
        for i in range(10):
            db.insert(sighting(f"o{i}", i, i))
        db.clear()
        assert len(db) == 0
        assert db.next_expiry() is None
        assert (
            db.objects_in_area(
                RangeQuery(Rect(-100, -100, 100, 100), req_acc=50, req_overlap=0.1),
                UNIFORM_ACC,
            )
            == []
        )


class TestBatchUpdates:
    def _populated(self, n=20, index=None):
        db = SightingDB(index=index)
        for i in range(n):
            db.insert(sighting(f"o{i}", i * 10.0, i * 10.0), now=0.0)
        return db

    def test_update_many_moves_all(self):
        db = self._populated()
        db.update_many([sighting(f"o{i}", i * 10.0 + 1, i * 10.0 + 1, t=5.0) for i in range(20)], now=5.0)
        assert db.get("o3").pos == Point(31, 31)
        hits = {oid for oid, _ in db.positions_in_rect(Rect(0, 0, 200, 200))}
        assert hits == {f"o{i}" for i in range(20)}

    def test_update_many_renews_expiry(self):
        db = SightingDB(default_ttl=10.0)
        db.insert(sighting("a", 1, 1), now=0.0)
        db.update_many([sighting("a", 2, 2, t=8.0)], now=8.0)
        assert db.expire_due(now=12.0) == []  # renewed to 18.0
        assert db.expire_due(now=18.5) == ["a"]

    def test_update_many_unknown_id_has_no_side_effects(self):
        db = self._populated(3)
        with pytest.raises(KeyError):
            db.update_many([sighting("o0", 500, 500), sighting("ghost", 1, 1)])
        # Validation happens before anything lands.
        assert db.get("o0").pos == Point(0, 0)

    def test_update_many_on_grid_index(self):
        db = self._populated(10, index=GridIndex(cell_size=25.0))
        db.update_many([sighting(f"o{i}", 500.0 + i, 500.0 + i) for i in range(10)])
        hits = {oid for oid, _ in db.positions_in_rect(Rect(499, 499, 510, 510))}
        assert hits == {f"o{i}" for i in range(10)}

    def test_upsert_many_mixes_inserts_and_updates(self):
        db = self._populated(5)
        batch = [sighting("o1", 99, 99)] + [sighting(f"new{i}", i, i) for i in range(3)]
        db.upsert_many(batch, now=1.0)
        assert len(db) == 8
        assert db.get("o1").pos == Point(99, 99)
        assert db.get("new2").pos == Point(2, 2)

    def test_upsert_many_repeated_new_id_last_wins(self):
        db = SightingDB()
        db.upsert_many([sighting("x", 1, 1), sighting("x", 2, 2)])
        assert len(db) == 1
        assert db.get("x").pos == Point(2, 2)
