"""Tests for the persistent store backends (WAL + snapshot)."""

import json

import pytest

from repro.errors import StorageError
from repro.storage import FileStore, MemoryStore


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return FileStore(tmp_path / "visitors")


class TestStoreContract:
    def test_empty_replay(self, store):
        assert list(store.replay()) == []
        assert store.record_count() == 0

    def test_append_and_replay_order(self, store):
        store.append("leaf", {"oid": "a"})
        store.append("remove", {"oid": "a"})
        store.append("leaf", {"oid": "b"})
        assert list(store.replay()) == [
            ("leaf", {"oid": "a"}),
            ("remove", {"oid": "a"}),
            ("leaf", {"oid": "b"}),
        ]
        assert store.record_count() == 3

    def test_compact_replaces_history(self, store):
        for i in range(10):
            store.append("leaf", {"oid": f"o{i}"})
        store.compact([("leaf", {"oid": "survivor"})])
        assert list(store.replay()) == [("leaf", {"oid": "survivor"})]
        assert store.record_count() == 1

    def test_appends_after_compact(self, store):
        store.compact([("leaf", {"oid": "base"})])
        store.append("forward", {"oid": "x", "ref": "child-1"})
        assert list(store.replay()) == [
            ("leaf", {"oid": "base"}),
            ("forward", {"oid": "x", "ref": "child-1"}),
        ]


class TestFileStore:
    def test_survives_reopen(self, tmp_path):
        stem = tmp_path / "visitors"
        first = FileStore(stem)
        first.append("leaf", {"oid": "a", "acc": 25.0})
        reopened = FileStore(stem)
        assert list(reopened.replay()) == [("leaf", {"oid": "a", "acc": 25.0})]

    def test_torn_final_line_tolerated(self, tmp_path):
        stem = tmp_path / "visitors"
        store = FileStore(stem)
        store.append("leaf", {"oid": "a"})
        # Simulate a crash mid-append: a torn, incomplete final record
        # is skipped with a warning, never treated as corruption.
        with open(tmp_path / "visitors.log", "a", encoding="utf-8") as f:
            f.write('{"op": "leaf", "data": {"oid": "b"')
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            records = list(FileStore(stem).replay())
        assert records == [("leaf", {"oid": "a"})]

    def test_appends_continue_after_torn_recovery(self, tmp_path):
        # The WAL keeps working after a crash truncated its tail: the
        # torn record is skipped on replay, new appends land after it.
        stem = tmp_path / "visitors"
        store = FileStore(stem)
        store.append("leaf", {"oid": "a"})
        with open(tmp_path / "visitors.log", "a", encoding="utf-8") as f:
            f.write('{"op": "leaf", "data": {"oid": "b"')
        with pytest.warns(RuntimeWarning):
            list(FileStore(stem).replay())
        reopened = FileStore(stem)
        reopened.compact([("leaf", {"oid": "a"})])
        reopened.append("leaf", {"oid": "c"})
        assert list(reopened.replay()) == [
            ("leaf", {"oid": "a"}),
            ("leaf", {"oid": "c"}),
        ]

    def test_torn_snapshot_is_corruption(self, tmp_path):
        # Snapshots are written atomically (tmp + rename), so a torn
        # line there can never be an interrupted append — fail loudly.
        stem = tmp_path / "visitors"
        store = FileStore(stem)
        store.compact([("leaf", {"oid": "a"})])
        with open(tmp_path / "visitors.snapshot", "a", encoding="utf-8") as f:
            f.write('{"op": "leaf", "data": {"oid": "b"')
        with pytest.raises(StorageError):
            list(FileStore(stem).replay())

    def test_compact_leaves_no_temp_files(self, tmp_path):
        stem = tmp_path / "visitors"
        store = FileStore(stem, durable=True)
        store.append("leaf", {"oid": "a"})
        store.compact([("leaf", {"oid": "a"})])
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["visitors.snapshot"]

    def test_midfile_corruption_raises(self, tmp_path):
        stem = tmp_path / "visitors"
        store = FileStore(stem)
        store.append("leaf", {"oid": "a"})
        log = tmp_path / "visitors.log"
        content = log.read_text()
        log.write_text("GARBAGE\n" + content)
        with pytest.raises(StorageError):
            list(FileStore(stem).replay())

    def test_snapshot_is_atomic_format(self, tmp_path):
        stem = tmp_path / "visitors"
        store = FileStore(stem)
        store.append("leaf", {"oid": "a"})
        store.compact([("leaf", {"oid": "a"})])
        snapshot = tmp_path / "visitors.snapshot"
        assert snapshot.exists()
        assert not (tmp_path / "visitors.log").exists()
        record = json.loads(snapshot.read_text().strip())
        assert record == {"op": "leaf", "data": {"oid": "a"}}

    def test_durable_mode_appends(self, tmp_path):
        store = FileStore(tmp_path / "wal", durable=True)
        store.append("leaf", {"oid": "a"})
        assert store.record_count() == 1

    def test_creates_parent_directories(self, tmp_path):
        store = FileStore(tmp_path / "deep" / "nested" / "visitors")
        store.append("leaf", {"oid": "a"})
        assert store.record_count() == 1
