"""Tests for the visitor database and its durable recovery."""

import pytest

from repro.model import RegistrationInfo
from repro.storage import (
    FileStore,
    LeafVisitorRecord,
    MemoryStore,
    NonLeafVisitorRecord,
    VisitorDB,
)

REG = RegistrationInfo("client-1", des_acc=10.0, min_acc=100.0)


class TestVisitorDB:
    def test_insert_forward(self):
        db = VisitorDB()
        db.insert_forward("obj", "child-3")
        record = db.get("obj")
        assert isinstance(record, NonLeafVisitorRecord)
        assert record.forward_ref == "child-3"
        assert db.forward_ref("obj") == "child-3"
        assert db.leaf_record("obj") is None

    def test_insert_leaf(self):
        db = VisitorDB()
        db.insert_leaf("obj", 25.0, REG)
        record = db.leaf_record("obj")
        assert isinstance(record, LeafVisitorRecord)
        assert record.offered_acc == 25.0
        assert record.reg_info == REG
        assert db.forward_ref("obj") is None

    def test_redirect_forward(self):
        db = VisitorDB()
        db.insert_forward("obj", "child-1")
        db.insert_forward("obj", "child-2")
        assert db.forward_ref("obj") == "child-2"
        assert len(db) == 1

    def test_set_offered_acc(self):
        db = VisitorDB()
        db.insert_leaf("obj", 25.0, REG)
        db.set_offered_acc("obj", 40.0)
        assert db.leaf_record("obj").offered_acc == 40.0

    def test_set_offered_acc_on_forward_raises(self):
        db = VisitorDB()
        db.insert_forward("obj", "child-1")
        with pytest.raises(KeyError):
            db.set_offered_acc("obj", 40.0)

    def test_remove(self):
        db = VisitorDB()
        db.insert_leaf("obj", 25.0, REG)
        db.remove("obj")
        assert "obj" not in db
        assert db.get("obj") is None

    def test_remove_unknown_is_noop(self):
        VisitorDB().remove("ghost")

    def test_iteration(self):
        db = VisitorDB()
        db.insert_forward("a", "c1")
        db.insert_leaf("b", 10.0, REG)
        assert set(db.object_ids()) == {"a", "b"}
        assert dict(db.items()).keys() == {"a", "b"}


class TestRecovery:
    def test_recover_from_memory_store(self):
        store = MemoryStore()
        db = VisitorDB(store=store)
        db.insert_leaf("stay", 25.0, REG)
        db.insert_forward("fwd", "child-1")
        db.insert_leaf("gone", 30.0, REG)
        db.remove("gone")
        db.set_offered_acc("stay", 50.0)

        recovered = VisitorDB.recover(store)
        assert set(recovered.object_ids()) == {"stay", "fwd"}
        assert recovered.leaf_record("stay").offered_acc == 50.0
        assert recovered.leaf_record("stay").reg_info == REG
        assert recovered.forward_ref("fwd") == "child-1"

    def test_recover_from_file_store(self, tmp_path):
        stem = tmp_path / "visitors"
        db = VisitorDB(store=FileStore(stem))
        db.insert_leaf("a", 25.0, REG)
        db.insert_forward("b", "child-9")
        # A new process opens the same files.
        recovered = VisitorDB.recover(FileStore(stem))
        assert recovered.leaf_record("a").offered_acc == 25.0
        assert recovered.forward_ref("b") == "child-9"

    def test_recover_after_compaction(self):
        store = MemoryStore()
        db = VisitorDB(store=store)
        for i in range(20):
            db.insert_forward(f"o{i}", f"child-{i % 3}")
        for i in range(10):
            db.remove(f"o{i}")
        db.compact()
        assert store.record_count() == 10
        recovered = VisitorDB.recover(store)
        assert set(recovered.object_ids()) == {f"o{i}" for i in range(10, 20)}

    def test_compaction_preserves_leaf_records(self):
        store = MemoryStore()
        db = VisitorDB(store=store)
        db.insert_leaf("obj", 33.0, REG)
        db.compact()
        recovered = VisitorDB.recover(store)
        record = recovered.leaf_record("obj")
        assert record.offered_acc == 33.0
        assert record.reg_info.registrar == "client-1"

    def test_recovery_mirrors_live_state_random_ops(self):
        import random

        rng = random.Random(7)
        store = MemoryStore()
        db = VisitorDB(store=store)
        for step in range(300):
            oid = f"o{rng.randint(0, 30)}"
            action = rng.random()
            if action < 0.4:
                db.insert_forward(oid, f"child-{rng.randint(0, 4)}")
            elif action < 0.7:
                db.insert_leaf(oid, float(rng.randint(5, 100)), REG)
            elif action < 0.9:
                db.remove(oid)
            elif db.leaf_record(oid) is not None:
                db.set_offered_acc(oid, float(rng.randint(5, 100)))
        recovered = VisitorDB.recover(store)
        assert dict(recovered.items()) == dict(db.items())
