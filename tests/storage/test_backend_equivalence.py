"""Hypothesis: the columnar backend is observationally identical.

`LocalDataStore(backend="columnar")` must be indistinguishable from
`backend="objects"` through the public query surface, for *any*
interleaving of registration, movement, deregistration and expiry —
including the interleavings that exercise the columnar free-list
(deregister frees a slot, the next registration reuses it).  Hypothesis
drives both backends through identical operation sequences and compares
every observable after every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Point, Rect
from repro.model import NearestNeighborQuery, RangeQuery, SightingRecord
from repro.storage import BACKENDS, LocalDataStore

AREA = 1000.0

oid_idx = st.integers(min_value=0, max_value=11)
coord = st.floats(min_value=0.0, max_value=AREA, allow_nan=False)

register_op = st.tuples(st.just("register"), oid_idx, coord, coord)
update_op = st.tuples(st.just("update"), oid_idx, coord, coord)
deregister_op = st.tuples(st.just("deregister"), oid_idx, coord, coord)
expire_op = st.tuples(st.just("expire"), oid_idx, coord, coord)

ops_lists = st.lists(
    st.one_of(register_op, update_op, deregister_op, expire_op),
    min_size=1,
    max_size=50,
)


def make_store(backend: str) -> LocalDataStore:
    return LocalDataStore(backend=backend, ttl=30.0)


def apply_op(store: LocalDataStore, op, oid: str, x: float, y: float, now: float):
    """One operation; returns True when the guard let it run."""
    known = store.visitors.leaf_record(oid) is not None
    if op == "register":
        if known:
            return False
        store.register(
            SightingRecord(oid, now, Point(x, y), 10.0),
            des_acc=25.0,
            min_acc=100.0,
            registrar="prop",
            now=now,
        )
    elif op == "update":
        if not known:
            return False
        store.update(SightingRecord(oid, now, Point(x, y), 10.0), now=now)
    elif op == "deregister":
        if not known:
            return False
        store.deregister(oid)
    elif op == "expire":
        # TTL is 30; jumping `now` past every deadline sweeps the lot.
        store.expire_due(now + 100.0)
    return True


def observe(store: LocalDataStore, probe: Point):
    """Everything a client can see, as one comparable value."""
    rects = [
        Rect(0.0, 0.0, AREA / 2, AREA / 2),
        Rect(AREA / 4, AREA / 4, AREA, AREA),
        Rect(0.0, 0.0, AREA, AREA),
    ]
    range_hits = [
        sorted((oid, ld) for oid, ld in store.range_query(RangeQuery(r)))
        for r in rects
    ]
    nn = store.nearest_neighbor_query(
        NearestNeighborQuery(probe, req_acc=200.0, near_qual=100.0)
    )
    return (
        store.sighting_count,
        store.visitor_count,
        sorted(store.sightings.object_ids()),
        store.sightings.counts_in_rects(rects),
        range_hits,
        nn.nearest,
        sorted(nn.near_set or []),
    )


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops_lists, probe_x=coord, probe_y=coord)
    def test_any_op_interleaving_is_observationally_identical(
        self, ops, probe_x, probe_y
    ):
        columnar = make_store("columnar")
        objects = make_store("objects")
        probe = Point(probe_x, probe_y)
        now = 0.0
        for op, idx, x, y in ops:
            now += 1.0
            oid = f"obj-{idx}"
            ran_a = apply_op(columnar, op, oid, x, y, now)
            ran_b = apply_op(objects, op, oid, x, y, now)
            assert ran_a == ran_b
            assert observe(columnar, probe) == observe(objects, probe)

    @settings(max_examples=40, deadline=None)
    @given(
        reused=st.lists(oid_idx, min_size=1, max_size=8, unique=True),
        xs=st.lists(coord, min_size=8, max_size=8),
        ys=st.lists(coord, min_size=8, max_size=8),
    )
    def test_free_list_reuse_after_deregistration(self, reused, xs, ys):
        """Deregister a subset, re-register into the freed slots, and the
        backends must still agree — the columnar free-list hands back
        recycled rows whose stale column values must be invisible."""
        columnar = make_store("columnar")
        objects = make_store("objects")
        for store in (columnar, objects):
            for i in range(12):
                store.register(
                    SightingRecord(f"obj-{i}", 0.0, Point(float(i * 70), 50.0), 10.0),
                    des_acc=25.0,
                    min_acc=100.0,
                    registrar="prop",
                )
        for idx in reused:
            columnar.deregister(f"obj-{idx}")
            objects.deregister(f"obj-{idx}")
        probe = Point(AREA / 2, AREA / 2)
        assert observe(columnar, probe) == observe(objects, probe)
        for j, idx in enumerate(reused):
            rec = SightingRecord(f"re-{idx}", 1.0, Point(xs[j % 8], ys[j % 8]), 10.0)
            columnar.register(rec, des_acc=25.0, min_acc=100.0, registrar="prop", now=1.0)
            objects.register(rec, des_acc=25.0, min_acc=100.0, registrar="prop", now=1.0)
            assert observe(columnar, probe) == observe(objects, probe)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backends_constant_lists_every_lane(backend):
    store = make_store(backend)
    assert store.backend == backend


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        LocalDataStore(backend="arrow")
