"""Edge-case and race-condition tests for LocationServer internals."""

import pytest

from repro.core import LocationService, build_table2_hierarchy
from repro.core import messages as m
from repro.geo import Point, Rect
from repro.model import RangeQuery, SightingRecord


@pytest.fixture
def svc():
    return LocationService(build_table2_hierarchy())


class TestClientFacingGuards:
    def test_pos_query_at_non_leaf_answers_not_found(self, svc):
        svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root")  # misconfigured client
        assert svc.run(client.pos_query("truck")) is None

    def test_range_query_at_non_leaf_answers_empty(self, svc):
        svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root")
        answer = svc.run(client.range_query(Rect(0, 0, 1500, 1500), req_overlap=0.1))
        assert answer.entries == ()

    def test_neighbor_query_at_non_leaf_answers_empty(self, svc):
        svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root")
        answer = svc.run(client.neighbor_query(Point(0, 0)))
        assert answer.result.nearest is None

    def test_update_at_wrong_leaf_rejected(self, svc):
        obj = svc.register("truck", Point(100, 100))  # agent root.0
        client = svc.new_client(entry_server="root.3")
        rid = client.next_request_id()

        async def misdirected_update():
            return await client.request(
                "root.3",
                m.UpdateReq(
                    request_id=rid,
                    reply_to=client.address,
                    sighting=SightingRecord("truck", 1.0, Point(1400, 1400), 10.0),
                ),
            )

        res = svc.run(misdirected_update())
        assert isinstance(res, m.UpdateRes)
        assert not res.ok
        # The real agent still answers correctly.
        assert svc.pos_query("truck").pos == Point(100, 100)

    def test_change_acc_at_wrong_server_rejected(self, svc):
        svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root.3")

        async def misdirected():
            return await client.request(
                "root.3",
                m.ChangeAccReq(
                    request_id=client.next_request_id(),
                    reply_to=client.address,
                    object_id="truck",
                    des_acc=10.0,
                    min_acc=50.0,
                ),
            )

        res = svc.run(misdirected())
        assert isinstance(res, m.ChangeAccRes)
        assert not res.ok


class TestPathTeardownRaceGuard:
    def test_stale_teardown_does_not_break_new_path(self, svc):
        """A PathTeardown from a server that is no longer on the object's
        path must be ignored (the guard in _on_path_teardown)."""
        obj = svc.register("truck", Point(700, 100))  # agent root.0
        svc.update(obj, Point(800, 100))  # handover to root.1
        svc.settle()
        assert svc.servers["root"].visitors.forward_ref("truck") == "root.1"
        # The *old* agent fabricates a late teardown (as if its soft state
        # had expired just before the handover completed).
        svc.servers["root.0"].send(
            "root", m.PathTeardown(object_id="truck", sender="root.0")
        )
        svc.settle()
        # The path still points at the new agent; queries still work.
        assert svc.servers["root"].visitors.forward_ref("truck") == "root.1"
        assert svc.pos_query("truck", entry_server="root.2").pos == Point(800, 100)

    def test_matching_teardown_removes_path(self, svc):
        svc.register("truck", Point(100, 100))
        svc.servers["root.0"].send(
            "root", m.PathTeardown(object_id="truck", sender="root.0")
        )
        svc.settle()
        assert "truck" not in svc.servers["root"].visitors


class TestRemovePathIdempotency:
    def test_remove_path_for_unknown_object_is_noop(self, svc):
        svc.servers["root"].send("root.0", m.RemovePath(object_id="ghost"))
        svc.settle()
        assert svc.loop.task_errors == []

    def test_double_remove_path(self, svc):
        svc.register("truck", Point(100, 100))
        for _ in range(2):
            svc.servers["root"].deliver(m.RemovePath(object_id="truck"))
            svc.settle()
        assert svc.loop.task_errors == []


class TestInternalQueryApi:
    def test_evaluate_range_from_leaf(self, svc):
        svc.register("a", Point(100, 100))
        svc.register("b", Point(1400, 1400))
        query = RangeQuery(Rect(0, 0, 1500, 1500), req_acc=50.0, req_overlap=0.3)
        entries = svc.run(svc.servers["root.0"].evaluate_range(query))
        assert {oid for oid, _ in entries} == {"a", "b"}

    def test_evaluate_position_local_and_remote(self, svc):
        svc.register("a", Point(100, 100))
        local = svc.run(svc.servers["root.0"].evaluate_position("a"))
        remote = svc.run(svc.servers["root.3"].evaluate_position("a"))
        assert local == remote
        assert local.pos == Point(100, 100)

    def test_evaluate_position_unknown(self, svc):
        assert svc.run(svc.servers["root.0"].evaluate_position("ghost")) is None


class TestDegenerateTopologies:
    def test_single_server_service(self):
        from repro.core import build_grid_hierarchy

        svc = LocationService(build_grid_hierarchy(Rect(0, 0, 1000, 1000), []))
        obj = svc.register("only", Point(500, 500))
        assert obj.agent == "root"
        svc.update(obj, Point(600, 600))
        assert svc.pos_query("only").pos == Point(600, 600)
        answer = svc.range_query(Rect(0, 0, 1000, 1000), req_acc=50.0, req_overlap=0.3)
        assert len(answer.entries) == 1
        nn = svc.neighbor_query(Point(0, 0), req_acc=50.0)
        assert nn.result.nearest[0] == "only"
        # Leaving the area on a single-server LS deregisters directly.
        res = svc.update(obj, Point(5000, 5000))
        assert res.deregistered
        assert svc.total_tracked() == 0

    def test_deep_hierarchy(self):
        from repro.core import build_quad_hierarchy

        svc = LocationService(build_quad_hierarchy(Rect(0, 0, 1024, 1024), depth=3))
        assert len(svc.hierarchy.leaf_ids()) == 64
        obj = svc.register("deep", Point(3, 3))
        ld = svc.pos_query("deep", entry_server=svc.hierarchy.leaf_for_point(Point(1020, 1020)))
        assert ld.pos == Point(3, 3)
        svc.update(obj, Point(1020, 1020))
        svc.settle()
        svc.check_consistency()

    def test_nn_on_empty_deep_hierarchy(self):
        from repro.core import build_quad_hierarchy

        svc = LocationService(build_quad_hierarchy(Rect(0, 0, 1024, 1024), depth=2))
        answer = svc.neighbor_query(Point(512, 512))
        assert answer.result.nearest is None
        assert svc.loop.task_errors == []
