"""Message-flow tests on the paper's Fig. 6 example hierarchy.

Fig. 6 narrates three scenarios on a 3-level, 7-server tree (s1 root;
s2/s3 middle; s4..s7 leaves).  These tests reconstruct the exact flows
the paper describes and assert which servers participate.

Leaf layout (1000 m service area): s4 = SW quarter (west-bottom),
s5 = NW, s6 = SE, s7 = NE — see ``build_fig6_hierarchy``.
"""

import pytest

from repro.core import LocationService, build_fig6_hierarchy
from repro.geo import Point, Rect


@pytest.fixture
def svc():
    return LocationService(build_fig6_hierarchy())


def handled(svc, server_id, message_type):
    return svc.servers[server_id].stats.messages_handled.get(message_type, 0)


class TestFig6Handover:
    """Panel 1: s4 detects a departure; s2 redirects to s5 (not via root)."""

    def test_handover_within_s2_does_not_touch_root(self, svc):
        # Object in s4 (west-bottom), moving north into s5 (west-top):
        # the common ancestor is s2, so s1 must stay uninvolved.
        obj = svc.register("walker", Point(100, 100))
        assert obj.agent == "s4"
        svc.network.stats.reset()
        svc.update(obj, Point(100, 700))
        svc.settle()
        assert obj.agent == "s5"
        assert handled(svc, "s2", "HandoverReq") == 1
        assert handled(svc, "s1", "HandoverReq") == 0
        assert handled(svc, "s5", "HandoverReq") == 1
        svc.check_consistency()

    def test_handover_across_root(self, svc):
        # s4 (west) to s6 (east-bottom): must go s4→s2→s1→s3→s6.
        obj = svc.register("walker", Point(100, 100))
        svc.update(obj, Point(700, 100))
        svc.settle()
        assert obj.agent == "s6"
        assert handled(svc, "s2", "HandoverReq") == 1
        assert handled(svc, "s1", "HandoverReq") == 1
        assert handled(svc, "s3", "HandoverReq") == 1
        svc.check_consistency()

    def test_forwarding_path_after_handover(self, svc):
        obj = svc.register("walker", Point(100, 100))
        svc.update(obj, Point(100, 700))
        svc.settle()
        assert svc.servers["s1"].visitors.forward_ref("walker") == "s2"
        assert svc.servers["s2"].visitors.forward_ref("walker") == "s5"
        assert "walker" not in svc.servers["s4"].visitors


class TestFig6PositionQuery:
    """Panel 2: query issued at s4 for an object residing at s6."""

    def test_query_forwarded_to_root_then_down(self, svc):
        svc.register("target", Point(700, 100))  # agent s6
        svc.network.stats.reset()
        ld = svc.pos_query("target", entry_server="s4")
        assert ld is not None
        # The fwd visits s2 (no record) → s1 (record) → s3 → s6.
        assert handled(svc, "s2", "PosQueryFwd") == 1
        assert handled(svc, "s1", "PosQueryFwd") == 1
        assert handled(svc, "s3", "PosQueryFwd") == 1
        assert handled(svc, "s6", "PosQueryFwd") == 1
        # s6 answers the entry server directly (one answer message total,
        # consumed by s4's parked query future).
        assert svc.network.stats.by_type.get("PosQueryAnswer", 0) == 1

    def test_query_stops_at_s2_for_sibling_leaf(self, svc):
        """Paper: "if the object had been located in the service area of
        s5, the request would have been forwarded only up to s2"."""
        svc.register("target", Point(100, 700))  # agent s5
        svc.network.stats.reset()
        ld = svc.pos_query("target", entry_server="s4")
        assert ld is not None
        assert handled(svc, "s2", "PosQueryFwd") == 1
        assert handled(svc, "s1", "PosQueryFwd") == 0


class TestFig6RangeQuery:
    """Panel 3: range query at s4 over an area spanning s6 and s7."""

    def test_range_spanning_s6_s7(self, svc):
        svc.register("a", Point(700, 200))  # s6
        svc.register("b", Point(700, 800))  # s7
        svc.register("c", Point(100, 100))  # s4 — outside the queried area
        svc.network.stats.reset()
        # The eastern strip: overlaps s6 and s7 only.
        answer = svc.range_query(
            Rect(600, 50, 950, 950), req_acc=50.0, req_overlap=0.5, entry_server="s4"
        )
        ids = {oid for oid, _ in answer.entries}
        assert ids == {"a", "b"}
        # The query propagates up to s1 (the first server covering the
        # area), down through s3 to s6 and s7, which answer s4 directly.
        assert handled(svc, "s3", "RangeQueryFwd") == 1
        assert handled(svc, "s6", "RangeQueryFwd") == 1
        assert handled(svc, "s7", "RangeQueryFwd") == 1
        assert handled(svc, "s4", "RangeQuerySubRes") == 2

    def test_local_range_stays_in_leaf(self, svc):
        svc.register("a", Point(100, 100))
        svc.network.stats.reset()
        answer = svc.range_query(
            Rect(50, 50, 200, 200), req_acc=50.0, req_overlap=0.5, entry_server="s4"
        )
        assert {oid for oid, _ in answer.entries} == {"a"}
        # Entirely inside s4: no forwarding at all.
        assert svc.network.stats.by_type.get("RangeQueryFwd", 0) == 0
