"""Tests for stationary tracking systems (Active-Badge-style registrars)."""

import pytest

from repro.core import LocationService, SensorCell, StationaryTracker, build_table2_hierarchy
from repro.errors import LocationServiceError
from repro.geo import Point, Rect


def make_tracker(svc, cells=None, **kwargs):
    cells = cells or [
        SensorCell("lobby", Rect(0, 0, 20, 20)),
        SensorCell("lab", Rect(20, 0, 40, 20)),
        SensorCell("corridor", Rect(0, 20, 40, 30)),
    ]
    tracker = StationaryTracker("building-A", cells, entry_server="root.0", **kwargs)
    svc.network.join(tracker)
    return tracker


@pytest.fixture
def svc():
    return LocationService(build_table2_hierarchy())


class TestSensorCell:
    def test_position_is_center(self):
        cell = SensorCell("room", Rect(0, 0, 20, 10))
        assert cell.position == Point(10, 5)

    def test_accuracy_is_circumradius(self):
        cell = SensorCell("room", Rect(0, 0, 6, 8))
        assert cell.accuracy == pytest.approx(5.0)


class TestTrackerConstruction:
    def test_needs_cells(self, svc):
        with pytest.raises(LocationServiceError):
            StationaryTracker("t", [], entry_server="root.0")

    def test_duplicate_cells_rejected(self, svc):
        cells = [
            SensorCell("a", Rect(0, 0, 10, 10)),
            SensorCell("a", Rect(10, 0, 20, 10)),
        ]
        with pytest.raises(LocationServiceError):
            StationaryTracker("t", cells, entry_server="root.0")

    def test_default_accuracy_from_coarsest_cell(self, svc):
        tracker = make_tracker(svc)
        # The corridor (40 x 10) has the largest circumradius.
        corridor = SensorCell("corridor", Rect(0, 20, 40, 30))
        assert tracker.des_acc == pytest.approx(corridor.accuracy)


class TestSightings:
    def test_first_sighting_registers(self, svc):
        tracker = make_tracker(svc)
        offered = svc.run(tracker.sight("badge-1", "lobby"))
        assert offered >= 10.0
        assert tracker.tracked_count == 1
        ld = svc.pos_query("badge-1")
        assert ld.pos == Point(10, 10)  # lobby center

    def test_subsequent_sightings_update(self, svc):
        tracker = make_tracker(svc)
        svc.run(tracker.sight("badge-1", "lobby"))
        svc.run(tracker.sight("badge-1", "lab"))
        ld = svc.pos_query("badge-1")
        assert ld.pos == Point(30, 10)  # lab center
        assert tracker.tracked_count == 1

    def test_unknown_cell_rejected(self, svc):
        tracker = make_tracker(svc)
        with pytest.raises(LocationServiceError):
            svc.run(tracker.sight("badge-1", "roof"))

    def test_many_badges(self, svc):
        tracker = make_tracker(svc)
        for i in range(10):
            svc.run(tracker.sight(f"badge-{i}", "lobby" if i % 2 else "lab"))
        assert tracker.tracked_count == 10
        answer = svc.range_query(
            Rect(0, 0, 40, 30), req_acc=100.0, req_overlap=0.2, entry_server="root.1"
        )
        assert len(answer.entries) == 10

    def test_badge_lost_deregisters(self, svc):
        tracker = make_tracker(svc)
        svc.run(tracker.sight("badge-1", "lobby"))
        assert svc.run(tracker.badge_lost("badge-1"))
        assert tracker.tracked_count == 0
        svc.settle()
        assert svc.pos_query("badge-1") is None
        assert svc.total_tracked() == 0

    def test_badge_lost_unknown(self, svc):
        tracker = make_tracker(svc)
        assert not svc.run(tracker.badge_lost("ghost"))


class TestRegistrarRole:
    def test_tracker_receives_acc_notifications(self):
        """After a handover the notifyAvailAcc goes to the *tracker* —
        the registering instance — not to the (networkless) badge."""
        svc = LocationService(build_table2_hierarchy())
        # A second installation in another quadrant, so a badge can move
        # between cells that live under different leaf servers.
        cells = [
            SensorCell("west", Rect(700, 95, 740, 135)),
            SensorCell("east", Rect(760, 95, 800, 135)),
        ]
        tracker = StationaryTracker(
            "campus", cells, entry_server="root.0", des_acc=40.0, min_acc=500.0
        )
        svc.network.join(tracker)
        svc.run(tracker.sight("badge-1", "west"))
        agent_before = tracker.badges["badge-1"][0]
        svc.run(tracker.sight("badge-1", "east"))  # crosses into root.1
        svc.settle()
        agent_after = tracker.badges["badge-1"][0]
        assert agent_before == "root.0"
        assert agent_after == "root.1"
        svc.check_consistency()

    def test_sighting_after_crash_recovers_state(self, svc):
        tracker = make_tracker(svc)
        svc.run(tracker.sight("badge-1", "lobby"))
        svc.servers["root.0"].simulate_crash_recovery()
        assert svc.pos_query("badge-1") is None
        svc.run(tracker.sight("badge-1", "lab"))
        assert svc.pos_query("badge-1").pos == Point(30, 10)
