"""Tests for the batched protocol lane (PR 3).

``LocationService.update_many``'s protocol traffic travels as one
envelope per destination server (``UpdateBatchReq`` / ``HandoverBatchReq``
/ ``DeregisterBatchReq``); the lane must be observationally equivalent to
the per-report protocol — identical store state, agents and forwarding
paths over arbitrary crossing workloads — while sending far fewer
messages, and an envelope must survive a crashed or vanished destination
through envelope-level retry and re-routing.
"""

import random

import pytest

from repro.core import LocationService, build_table2_hierarchy
from repro.errors import TransportError
from repro.geo import Point, Rect
from repro.sim.metrics import MessageLedger

AREA = Rect(0, 0, 1500, 1500)


@pytest.fixture
def svc():
    return LocationService(build_table2_hierarchy(1500.0), sighting_ttl=1e9)


def random_walk_state(svc, lane, seed, objects=14, ticks=6, step=450.0):
    """Drive a seeded crossing-heavy random walk over one lane; returns
    the observable end state (positions + agents)."""
    rng = random.Random(seed)
    objs = {}
    positions = {}
    for i in range(objects):
        pos = Point(rng.uniform(0, 1500), rng.uniform(0, 1500))
        objs[f"o{i}"] = svc.register(f"o{i}", pos)
        positions[f"o{i}"] = pos
    for _ in range(ticks):
        moves = []
        for oid, obj in objs.items():
            old = positions[oid]
            pos = Point(
                min(AREA.max_x, max(0.0, old.x + rng.uniform(-step, step))),
                min(AREA.max_y, max(0.0, old.y + rng.uniform(-step, step))),
            )
            positions[oid] = pos
            moves.append((obj, pos))
        svc.update_many(moves, protocol_lane=lane)
    svc.check_consistency()
    return {
        oid: (svc.pos_query(oid).pos, obj.agent, obj.offered_acc)
        for oid, obj in objs.items()
    }


class TestLaneEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23, 91])
    def test_batched_lane_matches_per_report_lane(self, seed):
        """Property: both lanes produce identical store state, agents and
        offered accuracies across random crossing workloads."""
        states = {
            lane: random_walk_state(
                LocationService(build_table2_hierarchy(1500.0), sighting_ttl=1e9),
                lane,
                seed,
            )
            for lane in ("batched", "per-report")
        }
        assert states["batched"] == states["per-report"]

    def test_no_sighting_lost_across_lanes(self):
        for lane in ("batched", "per-report"):
            svc = LocationService(build_table2_hierarchy(1500.0), sighting_ttl=1e9)
            random_walk_state(svc, lane, seed=5, objects=20, ticks=5)
            assert svc.total_tracked() == 20

    def test_leaving_root_area_deregisters_on_batched_lane(self, svc):
        a = svc.register("a", Point(100, 100))
        b = svc.register("b", Point(120, 100))
        stats = svc.update_many(
            [(a, Point(5000, 5000)), (b, Point(130, 110))],
            protocol_lane="batched",
        )
        assert stats == {"fast": 1, "protocol": 1}
        assert a.deregistered and a.agent is None
        assert svc.pos_query("a") is None
        assert svc.pos_query("b").pos == Point(130, 110)
        svc.check_consistency()


class TestEnvelopeTraffic:
    def test_one_envelope_per_destination(self, svc):
        """Many same-leaf crossings produce one UpdateBatchReq, not one
        UpdateReq per object — the message-count win the lane exists for."""
        objs = [svc.register(f"o{i}", Point(100.0 + i, 100.0)) for i in range(10)]
        ledger = MessageLedger(svc.network.stats)
        svc.update_many(
            [(obj, Point(1200.0 + i, 1200.0)) for i, obj in enumerate(objs)],
            protocol_lane="batched",
        )
        delta = ledger.protocol_delta()
        assert delta.get("UpdateBatchReq") == 1
        assert "UpdateReq" not in delta
        assert "HandoverReq" not in delta  # handovers travelled enveloped too
        assert delta.get("HandoverBatchReq", 0) >= 1
        for obj in objs:
            assert obj.agent == "root.3"

    def test_batched_lane_sends_fewer_protocol_messages(self):
        def messages(lane):
            svc = LocationService(build_table2_hierarchy(1500.0), sighting_ttl=1e9)
            objs = [
                svc.register(f"o{i}", Point(50.0 + 20 * i, 700.0)) for i in range(12)
            ]
            ledger = MessageLedger(svc.network.stats)
            svc.update_many(
                [(obj, Point(1000.0 + 10 * i, 700.0)) for i, obj in enumerate(objs)],
                protocol_lane=lane,
            )
            return ledger.protocol_messages()

        assert messages("per-report") >= 2 * messages("batched")


class TestDeregisterBatch:
    def test_deregister_many_across_destinations(self, svc):
        objs = [
            svc.register("sw", Point(100, 100)),
            svc.register("ne", Point(1200, 1200)),
            svc.register("keep", Point(700, 100)),
        ]
        results = svc.deregister_many([objs[0], objs[1]])
        assert results == {"sw": True, "ne": True}
        assert objs[0].deregistered and objs[1].deregistered
        assert svc.pos_query("sw") is None and svc.pos_query("ne") is None
        assert svc.pos_query("keep") is not None
        assert svc.total_tracked() == 1
        svc.check_consistency()

    def test_unregistered_object_maps_to_false(self, svc):
        ghost = svc.new_tracked_object("ghost")
        live = svc.register("live", Point(200, 200))
        results = svc.deregister_many([ghost, live])
        assert results == {"ghost": False, "live": True}

    def test_geo_facade_deregister_many(self):
        from repro.core.geo_service import GeoLocationService
        from repro.geo import GeoCoordinate

        geo = GeoLocationService.city(
            GeoCoordinate(48.7758, 9.1829), extent_m=4000, depth=1
        )
        t1 = geo.register("t1", GeoCoordinate(48.7761, 9.1840))
        t2 = geo.register("t2", GeoCoordinate(48.7770, 9.1855))
        assert geo.deregister_many([t1, t2]) == {"t1": True, "t2": True}
        assert geo.pos_query("t1") is None and geo.pos_query("t2") is None

    def test_deregister_batch_tears_paths_down_batched(self, svc):
        objs = [svc.register(f"o{i}", Point(100.0 + i, 100.0)) for i in range(6)]
        ledger = MessageLedger(svc.network.stats)
        svc.deregister_many(objs)
        delta = ledger.protocol_delta()
        assert delta.get("DeregisterBatchReq") == 1
        assert "PathTeardown" not in delta
        assert delta.get("PathTeardownBatch", 0) >= 1
        assert svc.servers["root"].visitors.forward_ref("o0") is None


class TestSoftStateTeardownBatch:
    def test_expiry_sweep_sends_one_teardown_batch(self):
        svc = LocationService(
            build_table2_hierarchy(1500.0), sighting_ttl=50.0, sweep_interval=10.0
        )
        for i in range(8):
            svc.register(f"o{i}", Point(100.0 + i * 10, 100.0))
        ledger = MessageLedger(svc.network.stats)
        svc.settle(max_time=100.0)
        delta = ledger.protocol_delta()
        assert svc.total_tracked() == 0
        assert svc.servers["root"].visitors.forward_ref("o0") is None
        assert delta.get("PathTeardownBatch", 0) >= 1
        assert "PathTeardown" not in delta


class TestEnvelopeRetry:
    def test_crashed_destination_times_out_then_recovers(self, svc):
        obj = svc.register("a", Point(100, 100))
        svc.network.crash("root.0")
        with pytest.raises(TransportError):
            svc.update_many(
                [(obj, Point(1200, 1200))],
                protocol_lane="batched",
                envelope_timeout=0.5,
                envelope_retries=1,
            )
        svc.network.restore("root.0")
        stats = svc.update_many(
            [(obj, Point(1200, 1200))],
            protocol_lane="batched",
            envelope_timeout=0.5,
        )
        assert stats == {"fast": 0, "protocol": 1}
        assert obj.agent == "root.3"
        assert svc.pos_query("a").pos == Point(1200, 1200)
        svc.check_consistency()

    def test_vanished_destination_reroutes_through_root(self, svc):
        """A destination that left the network entirely (garbage-collected
        retirement alias) is re-routed through the root *before* sending —
        no timeout required — and the root's forwarding references
        resolve every object."""
        obj = svc.register("a", Point(100, 100))
        obj.agent = "gc-ed-alias"  # believed agent no longer exists
        stats = svc.update_many([(obj, Point(110, 120))], protocol_lane="batched")
        assert stats == {"fast": 0, "protocol": 1}
        assert obj.agent == "root.0"
        assert svc.pos_query("a").pos == Point(110, 120)
        svc.check_consistency()

    def test_deregister_many_vanished_destination_reroutes(self, svc):
        obj = svc.register("a", Point(100, 100))
        obj.agent = "gc-ed-alias"
        assert svc.deregister_many([obj]) == {"a": True}
        assert obj.deregistered
        assert svc.pos_query("a") is None
        svc.check_consistency()
