"""Per-item envelope retry bookkeeping and protocol-lane NACKs.

A partially-crashed subtree used to fail (and re-send) whole envelopes:
with ``sub_timeout`` set, servers bound their sub-envelope fan-outs and
answer stuck items as *unacknowledged*, so the service resends only
those.  Deregistration and path teardown now answer negative
acknowledgements that distinguish *already gone* from *never existed*.
"""

import pytest

from repro.core import LocationService, build_fig6_hierarchy, messages as m
from repro.geo import Point
from repro.runtime.base import Endpoint
from repro.runtime.latency import LatencyModel


@pytest.fixture
def svc():
    """The Fig.-6 three-level hierarchy: s1 root; s2(w): s4, s5; s3(e):
    s6, s7 — deep enough that a crashed *leaf* is a partially-crashed
    subtree behind a live interior server."""
    service = LocationService(
        build_fig6_hierarchy(1000.0), latency=LatencyModel(base=1e-4)
    )
    yield service


class TestPerItemUpdateRetry:
    def test_crashed_subtree_fails_only_its_items(self, svc):
        # a stays in the west (s4); b crosses into the crashed south-east
        # leaf s6's area — its handover sub-envelope times out at s3.
        a = svc.register("a", Point(100.0, 100.0))
        b = svc.register("b", Point(120.0, 100.0))
        svc.network.crash("s6")
        stats = svc.update_many(
            [(a, Point(140.0, 130.0)), (b, Point(800.0, 100.0))],
            protocol_lane="batched",
            envelope_timeout=10.0,
            envelope_retries=1,
            envelope_sub_timeout=1.0,
        )
        assert stats == {"fast": 1, "protocol": 1}
        # a's fast-path report applied; b's item is unacknowledged, its
        # agent unchanged — the envelope as a whole did NOT fail.
        assert a.last_reported == Point(140.0, 130.0)
        assert b.agent == "s4"
        assert svc.pos_query("a").pos == Point(140.0, 130.0)
        # After the leaf recovers, only b's item needs a new tick.
        svc.network.restore("s6")
        svc.update_many(
            [(b, Point(800.0, 100.0))],
            protocol_lane="batched",
            envelope_sub_timeout=1.0,
        )
        assert b.agent == "s6"
        svc.check_consistency()

    def test_unacknowledged_items_resent_within_one_call(self, svc):
        """The per-item rounds live inside one update_many call: restore
        the crashed leaf on the virtual clock before the retry round
        fires and the call itself completes every item."""
        b = svc.register("b", Point(120.0, 100.0))
        svc.network.crash("s6")
        svc.loop.call_later(1.5, lambda: svc.network.restore("s6"))
        svc.update_many(
            [(b, Point(800.0, 100.0))],
            protocol_lane="batched",
            envelope_timeout=20.0,
            envelope_retries=2,
            envelope_sub_timeout=1.0,
        )
        assert b.agent == "s6"
        assert svc.pos_query("b").pos == Point(800.0, 100.0)
        svc.check_consistency()

    def test_no_forward_pointer_installed_for_unacknowledged_item(self, svc):
        b = svc.register("b", Point(120.0, 100.0))
        svc.network.crash("s6")
        svc.update_many(
            [(b, Point(800.0, 100.0))],
            protocol_lane="batched",
            envelope_sub_timeout=1.0,
        )
        # s3 must not point at s6 for b: the handover never landed.
        assert svc.servers["s3"].visitors.forward_ref("b") is None
        assert svc.servers["s1"].visitors.forward_ref("b") == "s2"
        svc.check_consistency()


class TestDeregisterNacks:
    def test_detailed_statuses(self, svc):
        a = svc.register("a", Point(100.0, 100.0))
        statuses = svc.deregister_many([a], detailed=True)
        assert statuses == {"a": "ok"}
        assert a.deregistered
        # Repeat deregistration: the agent leaf tombstoned the id.
        ghost = type(a)("a", "s4")
        ghost.agent = "s4"
        statuses = svc.deregister_many([ghost], detailed=True)
        assert statuses == {"a": m.NACK_ALREADY_GONE}

    def test_never_existed_vs_not_registered(self, svc):
        a = svc.register("a", Point(100.0, 100.0))
        phantom = type(a)("phantom", "s4")
        phantom.agent = "s4"
        unregistered = type(a)("late", "s4")  # agent is None
        statuses = svc.deregister_many([phantom, unregistered], detailed=True)
        assert statuses == {
            "phantom": m.NACK_NEVER_EXISTED,
            "late": "not-registered",
        }
        # The boolean contract is unchanged.
        results = svc.deregister_many([phantom], detailed=False)
        assert results == {"phantom": False}

    def test_crashed_subtree_deregister_is_unacknowledged_then_retried(self, svc):
        b = svc.register("b", Point(800.0, 100.0))
        assert b.agent == "s6"
        b_stale = type(b)("b", "s1")
        b_stale.agent = "s1"  # routes down the root's forwarding path to s6
        svc.network.crash("s6")
        statuses = svc.deregister_many(
            [b_stale], envelope_sub_timeout=1.0, envelope_retries=1, detailed=True
        )
        assert statuses == {"b": m.NACK_UNACKNOWLEDGED}
        svc.network.restore("s6")
        statuses = svc.deregister_many(
            [b_stale], envelope_sub_timeout=1.0, detailed=True
        )
        assert statuses == {"b": "ok"}
        assert svc.total_tracked() == 0


class _Sender(Endpoint):
    _counter = 0

    def __init__(self):
        type(self)._counter += 1
        super().__init__(f"nack-sender-{type(self)._counter}")


class TestPathTeardownNacks:
    def test_mismatched_sender_gets_redirected_nack(self, svc):
        svc.register("a", Point(100.0, 100.0))  # path s4 → s2 → s1
        sender = svc.servers["s5"]  # s2's ref points at s4, not s5
        before = sender.stats.teardown_nacks
        sender.send(
            "s2",
            m.PathTeardownBatch(object_ids=("a",), sender="s5"),
        )
        svc.settle()
        assert sender.stats.teardown_nacks == before + 1
        # The live path survived the bogus teardown.
        assert svc.servers["s2"].visitors.forward_ref("a") == "s4"
        assert svc.pos_query("a") is not None

    def test_unknown_and_gone_ids_get_reasoned_nacks(self, svc):
        obj = svc.register("a", Point(100.0, 100.0))
        svc.deregister(obj)  # tears the path down; s2 tombstones "a"
        courier = _Sender()
        svc.network.join(courier)
        # NACKs are addressed to the teardown's ``sender`` field.
        courier.send(
            "s2",
            m.PathTeardownBatch(object_ids=("a", "ghost"), sender=courier.address),
        )
        svc.settle()
        nacks = [msg for msg in courier.unhandled if isinstance(msg, m.PathTeardownNack)]
        assert len(nacks) == 1
        reasons = dict(nacks[0].object_ids)
        assert reasons == {
            "a": m.NACK_ALREADY_GONE,
            "ghost": m.NACK_NEVER_EXISTED,
        }


class TestTombstones:
    def test_visitor_db_remembers_recent_removals(self):
        from repro.storage.visitor_db import TOMBSTONE_CAPACITY, VisitorDB

        db = VisitorDB()
        db.insert_forward("x", "child")
        assert not db.was_removed("x")
        db.remove("x")
        assert db.was_removed("x")
        assert not db.was_removed("never")
        # Capacity bound: oldest tombstones are evicted first.
        for i in range(TOMBSTONE_CAPACITY + 1):
            db.insert_forward(f"t{i}", "child")
            db.remove(f"t{i}")
        assert not db.was_removed("x")
        assert db.was_removed(f"t{TOMBSTONE_CAPACITY}")
