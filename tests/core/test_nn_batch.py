"""Tests for the batched nearest-neighbor fan-out (PR 3 satellite).

:meth:`LocationServer.evaluate_neighbors_many` answers many NN queries
with one ``NNCandidatesBatchFwd`` fan-out per expanding-ring round and
one batched ``query_rect_many`` candidate pass per involved leaf; its
per-query results must match the per-query protocol
(``NeighborQueryReq``) candidate for candidate.
"""

import random

import pytest

from repro.geo import Point
from repro.model import NearestNeighborQuery
from repro.sim.metrics import MessageLedger
from repro.sim.scenario import table2_service

from tests.cluster.test_migration import force_split


def random_queries(rng, count, req_acc=50.0):
    return [
        NearestNeighborQuery(
            Point(rng.uniform(0, 1500), rng.uniform(0, 1500)), req_acc=req_acc
        )
        for _ in range(count)
    ]


class TestBatchedNNEquivalence:
    @pytest.mark.parametrize("seed", [2, 9, 40])
    def test_matches_per_query_protocol(self, seed):
        svc, homes = table2_service(object_count=400, seed=seed)
        rng = random.Random(seed)
        queries = random_queries(rng, 6)
        entry = svc.hierarchy.leaf_ids()[seed % 4]
        server = svc.servers[entry]
        batched = svc.run(server.evaluate_neighbors_many(queries))
        client = svc.new_client(entry_server=entry)
        for query, result in zip(queries, batched):
            answer = svc.run(
                client.neighbor_query(query.pos, req_acc=query.req_acc)
            )
            assert result.nearest == answer.result.nearest
            assert result.near_set == answer.result.near_set

    def test_unsatisfiable_accuracy_returns_empty(self):
        svc, homes = table2_service(object_count=50, seed=3)
        server = svc.servers[svc.hierarchy.leaf_ids()[0]]
        queries = [NearestNeighborQuery(Point(700, 700), req_acc=0.001)]
        results = svc.run(server.evaluate_neighbors_many(queries))
        assert results[0].nearest is None

    def test_empty_batch_is_a_noop(self):
        svc, homes = table2_service(object_count=20, seed=4)
        server = svc.servers[svc.hierarchy.leaf_ids()[0]]
        assert svc.run(server.evaluate_neighbors_many([])) == []


class TestBatchedNNFanOutTraffic:
    def test_one_fanout_message_chain_per_round(self):
        """Six probes entering one leaf travel as NNCandidatesBatchFwd
        messages — never as one NNCandidatesFwd per probe."""
        svc, homes = table2_service(object_count=300, seed=6)
        rng = random.Random(6)
        queries = random_queries(rng, 6)
        server = svc.servers[svc.hierarchy.leaf_ids()[0]]
        ledger = MessageLedger(svc.network.stats)
        svc.run(server.evaluate_neighbors_many(queries))
        delta = ledger.delta()
        assert delta.get("NNCandidatesBatchFwd", 0) >= 1
        assert "NNCandidatesFwd" not in delta


class TestInteriorEntryNNFanOut:
    def test_split_entry_server_still_evaluates_nn_batch(self):
        # A server reference held from before a split keeps answering —
        # the batch routes through its own fwd handler, as ranges do.
        svc, homes = table2_service(object_count=300, seed=12)
        server = svc.servers["root.0"]
        force_split(svc)
        assert not server.is_leaf
        rng = random.Random(12)
        queries = random_queries(rng, 4)
        results = svc.run(server.evaluate_neighbors_many(queries))
        assert len(results) == 4
        assert all(result.nearest is not None for result in results)
