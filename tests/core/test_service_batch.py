"""Tests for the batched server-tick update path (PR 1).

``LocationService.update_many`` must be observationally equivalent to a
sequence of individual ``report`` calls: in-area moves land in the agent
leaf's store (through one batched index pass per leaf), boundary
crossings still run the full handover protocol, and the hierarchy's
forwarding paths stay consistent throughout.
"""

import random

import pytest

from repro.core import LocationService, build_table2_hierarchy
from repro.core.geo_service import GeoLocationService
from repro.geo import GeoCoordinate, Point, Rect


@pytest.fixture
def svc():
    return LocationService(build_table2_hierarchy(1500.0), sighting_ttl=1e9)


def leaf_areas(svc):
    return {
        leaf: svc.hierarchy.config(leaf).area for leaf in svc.hierarchy.leaf_ids()
    }


class TestFastLane:
    def test_in_area_batch_is_all_fast(self, svc):
        objs = [
            svc.register(f"o{i}", Point(100.0 + i, 100.0 + i)) for i in range(8)
        ]
        stats = svc.update_many(
            [(obj, Point(110.0 + i, 110.0 + i)) for i, obj in enumerate(objs)]
        )
        assert stats == {"fast": 8, "protocol": 0}
        for i in range(8):
            assert svc.pos_query(f"o{i}").pos == Point(110.0 + i, 110.0 + i)
        svc.check_consistency()

    def test_fast_lane_counts_as_server_updates(self, svc):
        obj = svc.register("a", Point(100, 100))
        agent = obj.agent
        before = svc.servers[agent].stats.updates
        svc.update_many([(obj, Point(101, 101))])
        assert svc.servers[agent].stats.updates == before + 1

    def test_fast_lane_updates_client_state(self, svc):
        obj = svc.register("a", Point(100, 100))
        svc.update_many([(obj, Point(120, 130))])
        assert obj.last_reported == Point(120, 130)
        assert obj.agent is not None

    def test_repeated_object_in_batch_last_wins(self, svc):
        obj = svc.register("a", Point(100, 100))
        svc.update_many([(obj, Point(110, 110)), (obj, Point(115, 116))])
        assert svc.pos_query("a").pos == Point(115, 116)


class TestProtocolLane:
    def test_boundary_crossing_triggers_handover(self, svc):
        obj = svc.register("a", Point(100, 100))  # SW leaf
        old_agent = obj.agent
        stats = svc.update_many([(obj, Point(1200, 1200))])  # NE leaf
        assert stats == {"fast": 0, "protocol": 1}
        assert obj.agent != old_agent
        assert svc.pos_query("a").pos == Point(1200, 1200)
        svc.check_consistency()

    def test_mixed_batch(self, svc):
        stay = svc.register("stay", Point(200, 200))
        cross = svc.register("cross", Point(200, 300))
        stats = svc.update_many(
            [(stay, Point(210, 210)), (cross, Point(1300, 200))]
        )
        assert stats == {"fast": 1, "protocol": 1}
        assert svc.pos_query("stay").pos == Point(210, 210)
        assert svc.pos_query("cross").pos == Point(1300, 200)
        svc.check_consistency()

    def test_unregistered_object_goes_through_protocol_error(self, svc):
        obj = svc.new_tracked_object("ghost")
        from repro.errors import LocationServiceError

        with pytest.raises(LocationServiceError):
            svc.update_many([(obj, Point(100, 100))])

    def test_leaving_root_area_deregisters(self, svc):
        obj = svc.register("a", Point(100, 100))
        stats = svc.update_many([(obj, Point(5000, 5000))])
        assert stats["protocol"] == 1
        assert obj.deregistered
        assert svc.pos_query("a") is None


class TestEquivalenceWithSequentialReports:
    def test_random_walk_matches_individual_updates(self):
        """Batched ticks equal one-by-one reports, crossings included."""
        area = Rect(0, 0, 1500, 1500)

        def drive(batched):
            # Identical seed for both runs => identical move streams.
            rng = random.Random(3)
            svc = LocationService(build_table2_hierarchy(1500.0), sighting_ttl=1e9)
            objs = {}
            positions = {}
            for i in range(12):
                pos = Point(rng.uniform(0, 1500), rng.uniform(0, 1500))
                objs[f"o{i}"] = svc.register(f"o{i}", pos)
                positions[f"o{i}"] = pos
            for _ in range(6):
                moves = []
                for oid, obj in objs.items():
                    old = positions[oid]
                    pos = Point(
                        min(area.max_x, max(0.0, old.x + rng.uniform(-400, 400))),
                        min(area.max_y, max(0.0, old.y + rng.uniform(-400, 400))),
                    )
                    positions[oid] = pos
                    moves.append((obj, pos))
                if batched:
                    svc.update_many(moves)
                else:
                    for obj, pos in moves:
                        svc.update(obj, pos)
            svc.check_consistency()
            return {oid: svc.pos_query(oid).pos for oid in objs}

        assert drive(batched=True) == drive(batched=False)


class TestGeoFacade:
    def test_update_many_projects_coordinates(self):
        geo = GeoLocationService.city(
            GeoCoordinate(48.7758, 9.1829), extent_m=4000, depth=1
        )
        t1 = geo.register("t1", GeoCoordinate(48.7761, 9.1840))
        t2 = geo.register("t2", GeoCoordinate(48.7770, 9.1855))
        stats = geo.update_many(
            [
                (t1, GeoCoordinate(48.7763, 9.1842)),
                (t2, GeoCoordinate(48.7772, 9.1857)),
            ]
        )
        assert stats["fast"] + stats["protocol"] == 2
        coord, acc = geo.pos_query("t1")
        assert coord.latitude == pytest.approx(48.7763, abs=1e-6)
        assert coord.longitude == pytest.approx(9.1842, abs=1e-6)
        assert acc > 0


class TestBatchOrderingEdgeCases:
    def test_same_object_mixed_lanes_last_report_wins(self, svc):
        """Out-of-area report followed by in-area report for the same
        object: the batch is one tick, so only the last report lands."""
        obj = svc.register("a", Point(100, 100))
        stats = svc.update_many(
            [(obj, Point(1200, 1200)), (obj, Point(120, 120))]
        )
        assert stats == {"fast": 1, "protocol": 0}
        assert svc.pos_query("a").pos == Point(120, 120)
        svc.check_consistency()

    def test_unregistered_object_fails_before_anything_applies(self, svc):
        from repro.errors import LocationServiceError

        obj = svc.register("a", Point(100, 100))
        ghost = svc.new_tracked_object("ghost")
        with pytest.raises(LocationServiceError):
            svc.update_many([(obj, Point(150, 150)), (ghost, Point(1, 1))])
        # Upfront validation: the registered object's report was NOT applied.
        assert svc.pos_query("a").pos == Point(100, 100)
