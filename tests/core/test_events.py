"""Tests for the event mechanism (Section 1 / future-work extension)."""

import pytest

from repro.core import LocationService, build_table2_hierarchy
from repro.core.events import AreaOccupancy, Proximity
from repro.errors import LocationServiceError
from repro.geo import Point, Rect


@pytest.fixture
def svc():
    return LocationService(build_table2_hierarchy())


def drain(svc, seconds):
    async def wait():
        await svc.loop.sleep(seconds)

    svc.run(wait())


class TestPredicateValidation:
    def test_occupancy_threshold(self):
        with pytest.raises(ValueError):
            AreaOccupancy(Rect(0, 0, 10, 10), threshold=0)

    def test_proximity_distance(self):
        with pytest.raises(ValueError):
            Proximity("a", "b", distance=-1.0)

    def test_proximity_distinct_objects(self):
        with pytest.raises(ValueError):
            Proximity("a", "a", distance=10.0)


class TestAreaOccupancy:
    def test_fires_when_threshold_reached(self, svc):
        client = svc.new_client(entry_server="root.0")
        zone = Rect(0, 0, 300, 300)
        sub_id = svc.run(
            client.subscribe(
                AreaOccupancy(zone, threshold=2, req_acc=50.0, req_overlap=0.5),
                poll_interval=1.0,
            )
        )
        assert sub_id
        svc.register("a", Point(100, 100))
        drain(svc, 3.0)
        assert client.notifications == []  # one object: below threshold
        svc.register("b", Point(150, 150))
        drain(svc, 3.0)
        fired = [n for n in client.notifications if n.fired]
        assert len(fired) == 1
        assert set(fired[0].matched) == {"a", "b"}

    def test_edge_triggered_not_level(self, svc):
        client = svc.new_client(entry_server="root.0")
        zone = Rect(0, 0, 300, 300)
        svc.register("a", Point(100, 100))
        svc.run(
            client.subscribe(
                AreaOccupancy(zone, threshold=1, req_acc=50.0, req_overlap=0.5),
                poll_interval=1.0,
            )
        )
        drain(svc, 10.0)
        # Fires once on becoming true, not on every poll.
        assert len([n for n in client.notifications if n.fired]) == 1

    def test_notify_on_clear(self, svc):
        client = svc.new_client(entry_server="root.0")
        zone = Rect(0, 0, 300, 300)
        obj = svc.register("a", Point(100, 100))
        svc.run(
            client.subscribe(
                AreaOccupancy(zone, threshold=1, req_acc=50.0, req_overlap=0.5),
                poll_interval=1.0,
                notify_on_clear=True,
            )
        )
        drain(svc, 3.0)
        svc.update(obj, Point(1000, 1000))  # leaves the zone
        drain(svc, 3.0)
        states = [n.fired for n in client.notifications]
        assert states == [True, False]

    def test_remote_area_subscription(self, svc):
        # Subscribe at root.0 for a zone inside root.3's service area.
        client = svc.new_client(entry_server="root.0")
        zone = Rect(1200, 1200, 1400, 1400)
        svc.run(
            client.subscribe(
                AreaOccupancy(zone, threshold=1, req_acc=50.0, req_overlap=0.5),
                poll_interval=1.0,
            )
        )
        svc.register("far", Point(1300, 1300))
        drain(svc, 3.0)
        assert any(n.fired for n in client.notifications)

    def test_unsubscribe_stops_notifications(self, svc):
        client = svc.new_client(entry_server="root.0")
        zone = Rect(0, 0, 300, 300)
        sub_id = svc.run(
            client.subscribe(
                AreaOccupancy(zone, threshold=1, req_acc=50.0, req_overlap=0.5),
                poll_interval=1.0,
            )
        )
        assert svc.run(client.unsubscribe(sub_id))
        svc.register("a", Point(100, 100))
        drain(svc, 5.0)
        assert client.notifications == []
        assert svc.servers["root.0"].events.active_count == 0

    def test_unsubscribe_unknown_id(self, svc):
        client = svc.new_client(entry_server="root.0")
        assert not svc.run(client.unsubscribe("ghost"))


class TestProximity:
    def test_meeting_predicate(self, svc):
        client = svc.new_client(entry_server="root.0")
        alice = svc.register("alice", Point(100, 100))
        svc.register("bob", Point(1400, 1400))
        svc.run(
            client.subscribe(
                Proximity("alice", "bob", distance=50.0), poll_interval=1.0
            )
        )
        drain(svc, 3.0)
        assert client.notifications == []
        # Alice walks over to Bob.
        svc.update(alice, Point(1390, 1390))
        drain(svc, 3.0)
        fired = [n for n in client.notifications if n.fired]
        assert len(fired) == 1
        assert "alice" in fired[0].matched and "bob" in fired[0].matched

    def test_untracked_objects_do_not_fire(self, svc):
        client = svc.new_client(entry_server="root.0")
        svc.run(
            client.subscribe(Proximity("ghost1", "ghost2", distance=50.0), poll_interval=1.0)
        )
        drain(svc, 5.0)
        assert client.notifications == []


class TestSubscriptionRouting:
    def test_non_leaf_rejects_subscription(self, svc):
        client = svc.new_client(entry_server="root")
        with pytest.raises(LocationServiceError):
            svc.run(
                client.subscribe(AreaOccupancy(Rect(0, 0, 10, 10)), poll_interval=1.0)
            )

    def test_evaluations_counted(self, svc):
        client = svc.new_client(entry_server="root.0")
        sub_id = svc.run(
            client.subscribe(
                AreaOccupancy(Rect(0, 0, 300, 300), threshold=1), poll_interval=1.0
            )
        )
        drain(svc, 5.5)
        sub = svc.servers["root.0"].events.subscription(sub_id)
        assert sub.evaluations >= 5
