"""Property-based and stress tests of the whole distributed service.

The central invariants, checked after arbitrary operation sequences:

1. **path integrity** — every tracked object has exactly one agent and a
   complete root-to-agent forwarding path (``check_consistency``);
2. **oracle equivalence** — distributed answers equal a centralized
   evaluation of the pure Section-3 semantics over the true object set;
3. **conservation** — objects never duplicate or vanish except through
   explicit deregistration or leaving the service area.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheConfig, LocationService, build_quad_hierarchy
from repro.geo import Point, Rect
from repro.model import (
    NearestNeighborQuery,
    RangeQuery,
    nearest_neighbor,
    range_query as oracle_range,
)

ROOT = Rect(0, 0, 1600, 1600)


def oracle_entries(svc):
    entries = []
    for server in svc.servers.values():
        if server.is_leaf:
            for oid in server.store.sightings.object_ids():
                entries.append((oid, server.store.position_query(oid)))
    return entries


class TestRandomWalkEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_operations_preserve_invariants(self, seed):
        rng = random.Random(seed)
        svc = LocationService(
            build_quad_hierarchy(ROOT, depth=2),
            cache_config=CacheConfig.all_enabled() if seed % 2 else None,
        )
        objects = {}
        positions = {}
        for i in range(12):
            pos = Point(rng.uniform(0, 1600), rng.uniform(0, 1600))
            objects[f"o{i}"] = svc.register(f"o{i}", pos)
            positions[f"o{i}"] = pos

        for _ in range(30):
            oid = rng.choice(list(objects))
            action = rng.random()
            if action < 0.55:
                pos = Point(rng.uniform(0, 1600), rng.uniform(0, 1600))
                svc.update(objects[oid], pos)
                positions[oid] = pos
            elif action < 0.8:
                ld = svc.pos_query(
                    oid, entry_server=rng.choice(svc.hierarchy.leaf_ids())
                )
                assert ld is not None
                assert ld.pos == positions[oid]
            else:
                query = RangeQuery(
                    Rect.from_center(
                        Point(rng.uniform(200, 1400), rng.uniform(200, 1400)),
                        rng.uniform(100, 600),
                        rng.uniform(100, 600),
                    ),
                    req_acc=60.0,
                    req_overlap=0.3,
                )
                answer = svc.range_query(
                    query.area,
                    req_acc=60.0,
                    req_overlap=0.3,
                    entry_server=rng.choice(svc.hierarchy.leaf_ids()),
                )
                expected = oracle_range(oracle_entries(svc), query)
                assert list(answer.entries) == expected
        svc.settle()
        svc.check_consistency()
        assert svc.total_tracked() == len(objects)
        assert svc.loop.task_errors == []

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_nn_queries_match_oracle_after_churn(self, seed):
        rng = random.Random(seed)
        svc = LocationService(build_quad_hierarchy(ROOT, depth=1))
        objects = {}
        for i in range(15):
            pos = Point(rng.uniform(0, 1600), rng.uniform(0, 1600))
            objects[f"o{i}"] = svc.register(f"o{i}", pos)
        for _ in range(10):
            oid = rng.choice(list(objects))
            svc.update(objects[oid], Point(rng.uniform(0, 1600), rng.uniform(0, 1600)))
        probe = Point(rng.uniform(0, 1600), rng.uniform(0, 1600))
        near_qual = rng.uniform(0, 400)
        answer = svc.neighbor_query(
            probe,
            req_acc=60.0,
            near_qual=near_qual,
            entry_server=rng.choice(svc.hierarchy.leaf_ids()),
        )
        expected = nearest_neighbor(
            oracle_entries(svc),
            NearestNeighborQuery(probe, req_acc=60.0, near_qual=near_qual),
        )
        assert answer.result.nearest == expected.nearest
        assert set(answer.result.near_set) == set(expected.near_set)
        assert answer.result.guaranteed_min_distance == pytest.approx(
            expected.guaranteed_min_distance
        )


class TestConservation:
    def test_objects_conserved_through_heavy_churn(self):
        rng = random.Random(99)
        svc = LocationService(build_quad_hierarchy(ROOT, depth=2))
        objects = {}
        for i in range(25):
            pos = Point(rng.uniform(0, 1600), rng.uniform(0, 1600))
            objects[f"o{i}"] = svc.register(f"o{i}", pos)
        alive = set(objects)
        for step in range(120):
            oid = rng.choice(sorted(alive)) if alive else None
            if oid is None:
                break
            roll = rng.random()
            if roll < 0.75:
                svc.update(objects[oid], Point(rng.uniform(0, 1600), rng.uniform(0, 1600)))
            elif roll < 0.85:
                svc.deregister(objects[oid])
                alive.discard(oid)
            else:
                # Walk out of the service area: auto-deregistration.
                res = svc.update(objects[oid], Point(5000, 5000))
                assert res.deregistered
                alive.discard(oid)
        svc.settle()
        svc.check_consistency()
        assert svc.total_tracked() == len(alive)
        for oid in objects:
            ld = svc.pos_query(oid)
            assert (ld is not None) == (oid in alive)

    def test_interleaved_concurrent_handovers(self):
        """Many objects bouncing across the same boundary concurrently."""
        svc = LocationService(build_quad_hierarchy(ROOT, depth=1))
        objs = [svc.register(f"o{i}", Point(700, 100 + i * 50.0)) for i in range(10)]

        async def bounce(obj, flips):
            for i in range(flips):
                x = 900.0 if i % 2 == 0 else 700.0
                await obj.report(Point(x, obj.last_reported.y))

        async def run_all():
            tasks = [
                svc.loop.create_task(bounce(obj, 6), name=f"bounce-{i}")
                for i, obj in enumerate(objs)
            ]
            for task in tasks:
                await task

        svc.run(run_all())
        svc.settle()
        svc.check_consistency()
        assert svc.total_tracked() == 10
        assert svc.loop.task_errors == []
