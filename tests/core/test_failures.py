"""Failure-mode tests: soft state, crash recovery, message loss.

These exercise the paper's Section-5 reliability story end to end:
sighting records are soft state that expires hierarchy-wide; volatile
leaf state is rebuilt from incoming updates after a crash while the
persistent visitor DB keeps forwarding paths alive; UDP-style message
loss surfaces as client timeouts, never as wrong answers.
"""

import pytest

from repro.core import LocationService, build_table2_hierarchy
from repro.errors import TransportError
from repro.geo import Point, Rect


def make_service(**kwargs):
    return LocationService(build_table2_hierarchy(), **kwargs)


class TestSoftStateExpiry:
    def test_expiry_tears_down_whole_path(self):
        svc = make_service(sighting_ttl=60.0)
        svc.register("fading", Point(100, 100))
        assert "fading" in svc.servers["root"].visitors

        async def wait():
            await svc.loop.sleep(120.0)

        svc.run(wait())
        svc.servers["root.0"].sweep_soft_state()
        svc.settle()
        assert svc.total_tracked() == 0
        assert "fading" not in svc.servers["root"].visitors
        assert "fading" not in svc.servers["root.0"].visitors
        assert svc.pos_query("fading") is None

    def test_updates_keep_object_alive(self):
        svc = make_service(sighting_ttl=60.0)
        obj = svc.register("lively", Point(100, 100))

        async def update_periodically():
            for _ in range(5):
                await svc.loop.sleep(30.0)
                await obj.report(Point(110, 110))

        svc.run(update_periodically())
        svc.servers["root.0"].sweep_soft_state()
        svc.settle()
        assert svc.total_tracked() == 1
        assert svc.pos_query("lively") is not None

    def test_periodic_sweep_runs_automatically(self):
        svc = make_service(sighting_ttl=50.0, sweep_interval=10.0)
        svc.register("fading", Point(100, 100))
        svc.settle(max_time=200.0)
        assert svc.total_tracked() == 0
        assert "fading" not in svc.servers["root"].visitors

    def test_expiry_only_affects_lapsed_objects(self):
        svc = make_service(sighting_ttl=60.0)
        svc.register("old", Point(100, 100))

        async def later():
            await svc.loop.sleep(50.0)

        svc.run(later())
        svc.register("young", Point(200, 200))

        async def much_later():
            await svc.loop.sleep(20.0)  # now = 70: old expired, young not

        svc.run(much_later())
        svc.servers["root.0"].sweep_soft_state()
        svc.settle()
        assert svc.pos_query("old") is None
        assert svc.pos_query("young") is not None


class TestCrashRecovery:
    def test_forwarding_path_survives_crash(self):
        svc = make_service()
        obj = svc.register("truck", Point(100, 100))
        leaf = svc.servers["root.0"]
        # Crash: volatile sighting DB is lost, persistent visitor DB stays.
        leaf.simulate_crash_recovery()
        assert len(leaf.store.sightings) == 0
        assert leaf.visitors.leaf_record("truck") is not None
        # Position queries cannot be answered until an update arrives.
        assert svc.pos_query("truck", entry_server="root.3") is None
        # The periodic position update restores the volatile state.
        svc.update(obj, Point(120, 120))
        ld = svc.pos_query("truck", entry_server="root.3")
        assert ld.pos == Point(120, 120)
        assert ld.acc == 25.0  # negotiated accuracy survived the crash
        svc.check_consistency()

    def test_spatial_index_rebuilt_after_crash(self):
        svc = make_service()
        objects = {}
        for i in range(12):
            pos = Point(50 + i * 50.0, 100)
            objects[f"o{i}"] = (svc.register(f"o{i}", pos), pos)
        svc.servers["root.0"].simulate_crash_recovery()
        for obj, pos in objects.values():
            if svc.hierarchy.leaf_for_point(pos) == "root.0":
                svc.update(obj, pos)
        answer = svc.range_query(
            Rect(0, 0, 700, 200), req_acc=50.0, req_overlap=0.3, entry_server="root.1"
        )
        in_west = [oid for oid, (_, pos) in objects.items() if pos.x < 700]
        assert {oid for oid, _ in answer.entries} >= set(in_west[:-1])

    def test_downed_server_times_out_queries(self):
        svc = make_service()
        svc.register("truck", Point(100, 100))
        svc.network.crash("root.0")
        client = svc.new_client(entry_server="root.3", timeout=5.0)
        with pytest.raises(TransportError):
            svc.run(client.pos_query("truck"))

    def test_restored_server_answers_again(self):
        svc = make_service()
        svc.register("truck", Point(100, 100))
        svc.network.crash("root.0")
        client = svc.new_client(entry_server="root.3", timeout=5.0)
        with pytest.raises(TransportError):
            svc.run(client.pos_query("truck"))
        svc.network.restore("root.0")
        # State was volatile-safe here (no crash of the process itself).
        ld = svc.run(client.pos_query("truck"))
        assert ld is not None


class TestMessageLoss:
    def test_lossless_by_default(self):
        svc = make_service()
        svc.register("truck", Point(100, 100))
        assert svc.network.stats.messages_dropped == 0

    def test_loss_causes_timeout_not_wrong_answer(self):
        svc = make_service(drop_rate=1.0)
        obj = svc.new_tracked_object("truck", entry_server="root.0", timeout=5.0)
        with pytest.raises(TransportError):
            svc.run(obj.register(Point(100, 100), 25.0, 100.0))
        assert svc.network.stats.messages_dropped >= 1

    def test_client_retry_succeeds_under_partial_loss(self):
        svc = make_service(drop_rate=0.35, seed=4)
        obj = svc.new_tracked_object("truck", entry_server="root.0", timeout=5.0)

        async def register_with_retries():
            for _ in range(30):
                try:
                    return await obj.register(Point(100, 100), 25.0, 100.0)
                except TransportError:
                    continue
            raise AssertionError("registration never succeeded")

        offered = svc.run(register_with_retries())
        assert offered == 25.0
        # The object is eventually tracked exactly once.
        svc.settle()
        assert svc.total_tracked() == 1

    def test_queries_eventually_succeed_under_loss(self):
        svc = make_service(drop_rate=0.0)
        svc.register("truck", Point(100, 100))
        svc.network.drop_rate = 0.3
        client = svc.new_client(entry_server="root.3", timeout=5.0)

        async def query_with_retries():
            for _ in range(40):
                try:
                    return await client.pos_query("truck")
                except TransportError:
                    continue
            raise AssertionError("query never succeeded")

        ld = svc.run(query_with_retries())
        assert ld.pos == Point(100, 100)
