"""Tests for service-area hierarchies (Section 4 invariants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChildRef,
    Hierarchy,
    ServerConfig,
    build_fig6_hierarchy,
    build_grid_hierarchy,
    build_quad_hierarchy,
    build_table2_hierarchy,
)
from repro.errors import ConfigurationError, OutOfServiceAreaError
from repro.geo import Point, Rect

ROOT = Rect(0, 0, 1000, 1000)


class TestBuilders:
    def test_single_server(self):
        h = build_grid_hierarchy(ROOT, [])
        assert len(h) == 1
        assert h.leaf_ids() == ["root"]
        assert h.height() == 1

    def test_table2_shape(self):
        h = build_table2_hierarchy()
        assert len(h) == 5
        assert len(h.leaf_ids()) == 4
        assert h.height() == 2
        assert h.root_area() == Rect(0, 0, 1500, 1500)

    def test_quad_depth2(self):
        h = build_quad_hierarchy(ROOT, depth=2)
        assert len(h.leaf_ids()) == 16
        assert len(h) == 1 + 4 + 16
        assert h.height() == 3

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            build_quad_hierarchy(ROOT, depth=-1)

    def test_fig6_shape(self):
        h = build_fig6_hierarchy()
        assert sorted(h.server_ids()) == ["s1", "s2", "s3", "s4", "s5", "s6", "s7"]
        assert h.leaf_ids() == ["s4", "s5", "s6", "s7"]
        assert h.parent_of("s4") == "s2"
        assert h.parent_of("s2") == "s1"
        assert h.root_id == "s1"

    def test_asymmetric_grid(self):
        h = build_grid_hierarchy(ROOT, [(4, 1), (1, 2)])
        assert len(h.leaf_ids()) == 8
        assert h.height() == 3


class TestRouting:
    def test_leaf_for_point(self):
        h = build_table2_hierarchy()
        assert h.leaf_for_point(Point(10, 10)) == "root.0"
        assert h.leaf_for_point(Point(1400, 10)) == "root.1"
        assert h.leaf_for_point(Point(10, 1400)) == "root.2"
        assert h.leaf_for_point(Point(1400, 1400)) == "root.3"

    def test_boundary_point_routed_uniquely(self):
        h = build_table2_hierarchy()
        # The exact center belongs to exactly one quadrant (half-open).
        assert h.leaf_for_point(Point(750, 750)) == "root.3"

    def test_root_max_edge_still_routed(self):
        h = build_table2_hierarchy()
        assert h.leaf_for_point(Point(1500, 1500)) == "root.3"

    def test_outside_root_raises(self):
        with pytest.raises(OutOfServiceAreaError):
            build_table2_hierarchy().leaf_for_point(Point(-1, 0))

    def test_path_to_root(self):
        h = build_quad_hierarchy(ROOT, depth=2)
        leaf = h.leaf_for_point(Point(10, 10))
        path = h.path_to_root(leaf)
        assert path[0] == leaf
        assert path[-1] == "root"
        assert len(path) == 3

    @settings(max_examples=100)
    @given(
        st.floats(min_value=0, max_value=999.999),
        st.floats(min_value=0, max_value=999.999),
    )
    def test_every_point_routes_to_containing_leaf(self, x, y):
        h = build_quad_hierarchy(ROOT, depth=2)
        leaf = h.leaf_for_point(Point(x, y))
        assert h.config(leaf).area.contains_point(Point(x, y))


class TestValidation:
    def test_two_roots_rejected(self):
        configs = {
            "a": ServerConfig("a", ROOT, None, (), ROOT),
            "b": ServerConfig("b", ROOT, None, (), ROOT),
        }
        with pytest.raises(ConfigurationError):
            Hierarchy(configs)

    def test_unknown_parent_rejected(self):
        configs = {"a": ServerConfig("a", ROOT, "ghost", (), ROOT)}
        with pytest.raises(ConfigurationError):
            Hierarchy(configs)

    def test_overlapping_siblings_rejected(self):
        west = Rect(0, 0, 600, 1000)
        east = Rect(400, 0, 1000, 1000)  # overlaps west
        configs = {
            "root": ServerConfig(
                "root", ROOT, None, (ChildRef("w", west), ChildRef("e", east)), ROOT
            ),
            "w": ServerConfig("w", west, "root", (), ROOT),
            "e": ServerConfig("e", east, "root", (), ROOT),
        }
        with pytest.raises(ConfigurationError):
            Hierarchy(configs)

    def test_gap_in_children_rejected(self):
        west = Rect(0, 0, 400, 1000)
        east = Rect(600, 0, 1000, 1000)  # 200 m gap
        configs = {
            "root": ServerConfig(
                "root", ROOT, None, (ChildRef("w", west), ChildRef("e", east)), ROOT
            ),
            "w": ServerConfig("w", west, "root", (), ROOT),
            "e": ServerConfig("e", east, "root", (), ROOT),
        }
        with pytest.raises(ConfigurationError):
            Hierarchy(configs)

    def test_child_escaping_parent_rejected(self):
        inside = Rect(0, 0, 500, 1000)
        escaping = Rect(500, 0, 1100, 1000)
        configs = {
            "root": ServerConfig(
                "root", ROOT, None, (ChildRef("a", inside), ChildRef("b", escaping)), ROOT
            ),
            "a": ServerConfig("a", inside, "root", (), ROOT),
            "b": ServerConfig("b", escaping, "root", (), ROOT),
        }
        with pytest.raises(ConfigurationError):
            Hierarchy(configs)

    def test_child_not_pointing_back_rejected(self):
        west = Rect(0, 0, 500, 1000)
        east = Rect(500, 0, 1000, 1000)
        configs = {
            "root": ServerConfig(
                "root", ROOT, None, (ChildRef("w", west), ChildRef("e", east)), ROOT
            ),
            "w": ServerConfig("w", west, "root", (), ROOT),
            "e": ServerConfig("e", east, None, (), ROOT),  # thinks it is a root
        }
        with pytest.raises(ConfigurationError):
            Hierarchy(configs)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=1, max_value=4))
    def test_builders_always_validate(self, depth, fanout):
        h = build_grid_hierarchy(ROOT, [(fanout, fanout)] * depth)
        assert len(h.leaf_ids()) == (fanout * fanout) ** depth


class TestElasticDerivations:
    def halves(self, area: Rect) -> list[tuple[str, Rect]]:
        cx = area.center.x
        return [
            ("new-w", Rect(area.min_x, area.min_y, cx, area.max_y)),
            ("new-e", Rect(cx, area.min_y, area.max_x, area.max_y)),
        ]

    def test_with_split_adds_children_and_revalidates(self):
        h = build_table2_hierarchy()
        h2 = h.with_split("root.0", self.halves(h.config("root.0").area))
        assert len(h2) == len(h) + 2
        assert not h2.config("root.0").is_leaf
        assert h2.parent_of("new-w") == "root.0"
        assert h2.leaf_for_point(Point(10, 10)) == "new-w"
        assert h2.leaf_for_point(Point(700, 10)) == "new-e"
        # The original hierarchy is untouched.
        assert h.config("root.0").is_leaf

    def test_with_split_rejects_bad_inputs(self):
        h = build_table2_hierarchy()
        area = h.config("root.0").area
        with pytest.raises(ConfigurationError):
            h.with_split("root", self.halves(h.root_area()))  # not a leaf
        with pytest.raises(ConfigurationError):
            h.with_split("root.0", self.halves(area)[:1])  # one child
        with pytest.raises(ConfigurationError):
            h.with_split("root.0", [("root.1", area), ("x", area)])  # id taken
        with pytest.raises(ConfigurationError):
            # Children do not tile the leaf (half missing).
            h.with_split("root.0", [("a", area), ("b", Rect(0, 0, 10, 10))])

    def test_with_merge_folds_children_back(self):
        h = build_table2_hierarchy()
        h2 = h.with_split("root.0", self.halves(h.config("root.0").area))
        h3 = h2.with_merge("root.0")
        assert sorted(h3.server_ids()) == sorted(h.server_ids())
        assert h3.config("root.0").is_leaf

    def test_with_merge_rejects_non_mergeable(self):
        h = build_table2_hierarchy()
        with pytest.raises(ConfigurationError):
            h.with_merge("root.0")  # a leaf
        h2 = h.with_split("root.0", self.halves(h.config("root.0").area))
        # root's children are no longer all leaves.
        with pytest.raises(ConfigurationError):
            h2.with_merge("root")

    def test_siblings_of(self):
        h = build_table2_hierarchy()
        assert h.siblings_of("root.0") == ["root.1", "root.2", "root.3"]
        assert h.siblings_of("root") == []
