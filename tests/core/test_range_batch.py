"""Batched distributed range fan-out vs. the per-query protocol."""

import random

from repro.cluster import MigrationExecutor, PlannerConfig, RebalancePlanner
from repro.geo import Point, Rect
from repro.model import RangeQuery
from repro.sim.scenario import table2_service


def random_queries(rng, root: Rect, count: int) -> list[RangeQuery]:
    queries = []
    for _ in range(count):
        a = Point(rng.uniform(root.min_x, root.max_x), rng.uniform(root.min_y, root.max_y))
        b = Point(rng.uniform(root.min_x, root.max_x), rng.uniform(root.min_y, root.max_y))
        queries.append(
            RangeQuery(Rect.from_points(a, b), req_acc=100.0, req_overlap=0.5)
        )
    return queries


class TestEvaluateRangeMany:
    def assert_batch_matches_singles(self, svc, entry_id, queries):
        server = svc.servers[entry_id]
        batched = svc.run(server.evaluate_range_many(queries))
        for query, batch_answer in zip(queries, batched):
            single = svc.run(server.evaluate_range(query))
            assert batch_answer == single

    def test_matches_per_query_protocol(self):
        svc, _ = table2_service(object_count=400, seed=1)
        rng = random.Random(1)
        queries = random_queries(rng, svc.hierarchy.root_area(), 8)
        self.assert_batch_matches_singles(svc, "root.0", queries)

    def test_cross_leaf_and_local_mix(self):
        svc, _ = table2_service(object_count=400, seed=2)
        queries = [
            RangeQuery(Rect(0, 0, 100, 100), req_acc=100.0, req_overlap=0.5),
            RangeQuery(Rect(700, 700, 800, 800), req_acc=100.0, req_overlap=0.5),
            RangeQuery(Rect(0, 0, 1500, 1500), req_acc=100.0, req_overlap=0.5),
            RangeQuery(Rect(1400, 1400, 1500, 1500), req_acc=100.0, req_overlap=0.5),
        ]
        self.assert_batch_matches_singles(svc, "root.3", queries)

    def test_empty_batch(self):
        svc, _ = table2_service(object_count=10)
        server = svc.servers["root.0"]
        assert svc.run(server.evaluate_range_many([])) == []

    def test_whole_area_batch_counts_everything(self):
        svc, _ = table2_service(object_count=250, seed=3)
        server = svc.servers["root.1"]
        queries = [
            RangeQuery(svc.hierarchy.root_area(), req_acc=100.0, req_overlap=0.5)
        ] * 3
        results = svc.run(server.evaluate_range_many(queries))
        assert [len(r) for r in results] == [250, 250, 250]

    def test_batch_works_across_a_split_topology(self):
        svc, _ = table2_service(object_count=500, seed=4)
        planner = RebalancePlanner(PlannerConfig(split_load=1.0))
        MigrationExecutor(svc).execute_all(planner.plan(svc, {"root.0": 1e9}))
        rng = random.Random(5)
        queries = random_queries(rng, svc.hierarchy.root_area(), 6)
        entry = svc.hierarchy.leaf_ids()[0]
        self.assert_batch_matches_singles(svc, entry, queries)

    def test_single_server_hierarchy(self):
        from repro.core import LocationService, build_grid_hierarchy
        from repro.model import SightingRecord

        svc = LocationService(build_grid_hierarchy(Rect(0, 0, 100, 100), []))
        server = svc.servers["root"]
        for i in range(20):
            server.store.register(
                SightingRecord(f"o{i}", 0.0, Point(i * 5.0, i * 5.0), 10.0),
                25.0,
                100.0,
                "t",
                now=0.0,
            )
        queries = [
            RangeQuery(Rect(0, 0, 50, 50), req_acc=100.0, req_overlap=0.5),
            RangeQuery(Rect(60, 60, 100, 100), req_acc=100.0, req_overlap=0.5),
        ]
        results = svc.run(server.evaluate_range_many(queries))
        singles = [svc.run(server.evaluate_range(q)) for q in queries]
        assert results == singles
