"""Tests for the §6.5 leaf-server caches."""

import pytest

from repro.core import (
    CacheConfig,
    LocationService,
    build_quad_hierarchy,
    build_table2_hierarchy,
)
from repro.core.caching import LeafCaches
from repro.geo import Point, Rect
from repro.model import LocationDescriptor


def make_service(**cache_kwargs):
    return LocationService(
        build_table2_hierarchy(), cache_config=CacheConfig(**cache_kwargs)
    )


class TestLeafCachesUnit:
    def test_disabled_caches_return_nothing(self):
        caches = LeafCaches(CacheConfig.disabled())
        caches.note_leaf_area("leaf", Rect(0, 0, 10, 10))
        caches.note_agent("obj", "leaf")
        caches.note_descriptor("obj", LocationDescriptor(Point(1, 1), 5.0), 0.0)
        assert caches.leaf_for_point(5, 5) is None
        assert caches.agent_of("obj") is None
        assert caches.fresh_descriptor("obj", 1.0, 100.0) is None

    def test_area_cache_point_lookup(self):
        caches = LeafCaches(CacheConfig(area_cache=True))
        caches.note_leaf_area("west", Rect(0, 0, 100, 100))
        caches.note_leaf_area("east", Rect(100, 0, 200, 100))
        assert caches.leaf_for_point(50, 50) == "west"
        assert caches.leaf_for_point(150, 50) == "east"
        assert caches.leaf_for_point(100, 50) == "east"  # half-open boundary
        assert caches.leaf_for_point(500, 50) is None

    def test_leaves_covering_requires_full_tiling(self):
        caches = LeafCaches(CacheConfig(area_cache=True))
        caches.note_leaf_area("west", Rect(0, 0, 100, 100))
        assert caches.leaves_covering(Rect(20, 20, 150, 80)) is None
        caches.note_leaf_area("east", Rect(100, 0, 200, 100))
        covering = caches.leaves_covering(Rect(20, 20, 150, 80))
        assert covering is not None
        assert {leaf for leaf, _ in covering} == {"west", "east"}

    def test_agent_cache_invalidation(self):
        caches = LeafCaches(CacheConfig(agent_cache=True))
        caches.note_agent("obj", "leaf-1")
        assert caches.agent_of("obj") == "leaf-1"
        caches.invalidate_agent("obj")
        assert caches.agent_of("obj") is None
        assert caches.stats.agent_stale == 1

    def test_descriptor_cache_ages_with_max_speed(self):
        caches = LeafCaches(CacheConfig(descriptor_cache=True, max_speed=10.0))
        caches.note_descriptor("obj", LocationDescriptor(Point(0, 0), 20.0), as_of=100.0)
        # At t=103 the aged accuracy is 20 + 3*10 = 50.
        hit = caches.fresh_descriptor("obj", now=103.0, req_acc=50.0)
        assert hit is not None
        assert hit.acc == pytest.approx(50.0)
        assert caches.fresh_descriptor("obj", now=103.1, req_acc=50.0) is None

    def test_descriptor_cache_requires_req_acc(self):
        caches = LeafCaches(CacheConfig(descriptor_cache=True))
        caches.note_descriptor("obj", LocationDescriptor(Point(0, 0), 5.0), as_of=0.0)
        assert caches.fresh_descriptor("obj", now=0.0, req_acc=None) is None


class TestAgentCacheIntegration:
    def test_second_query_goes_direct(self):
        svc = make_service(agent_cache=True)
        svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root.3")
        assert svc.run(client.pos_query("truck")) is not None
        svc.network.stats.reset()
        assert svc.run(client.pos_query("truck")) is not None
        by_type = svc.network.stats.by_type
        # Direct probe: no hierarchy traversal.
        assert by_type.get("PosQueryDirect", 0) == 1
        assert by_type.get("PosQueryFwd", 0) == 0
        assert svc.servers["root.3"].caches.stats.agent_hits >= 1

    def test_stale_agent_falls_back(self):
        svc = make_service(agent_cache=True)
        obj = svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root.3")
        svc.run(client.pos_query("truck"))
        # Hand the object over to another leaf, invalidating the cache.
        svc.update(obj, Point(1400, 100))
        svc.settle()
        svc.network.stats.reset()
        ld = svc.run(client.pos_query("truck"))
        assert ld.pos == Point(1400, 100)
        by_type = svc.network.stats.by_type
        assert by_type.get("PosQueryDirect", 0) == 1  # the failed probe
        assert by_type.get("PosQueryFwd", 0) >= 1  # the fallback
        assert svc.servers["root.3"].caches.stats.agent_stale == 1

    def test_correctness_under_churn(self):
        """Stale caches may cost hops but never wrong answers."""
        import random

        rng = random.Random(11)
        svc = make_service(agent_cache=True, area_cache=True)
        objects = {
            f"o{i}": svc.register(f"o{i}", Point(rng.uniform(0, 1500), rng.uniform(0, 1500)))
            for i in range(10)
        }
        client = svc.new_client(entry_server="root.0")
        positions = {}
        for _ in range(80):
            oid = rng.choice(list(objects))
            if rng.random() < 0.5:
                pos = Point(rng.uniform(0, 1500), rng.uniform(0, 1500))
                svc.update(objects[oid], pos)
                positions[oid] = pos
            else:
                ld = svc.run(client.pos_query(oid))
                if oid in positions:
                    assert ld.pos == positions[oid]
        svc.settle()
        assert svc.loop.task_errors == []
        svc.check_consistency()


class TestDescriptorCacheIntegration:
    def test_fresh_descriptor_answers_without_messages(self):
        svc = make_service(descriptor_cache=True, max_speed=10.0)
        svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root.3")
        assert svc.run(client.pos_query("truck", req_acc=500.0)) is not None
        svc.network.stats.reset()
        ld = svc.run(client.pos_query("truck", req_acc=500.0))
        assert ld is not None
        # Only the client round trip; no server-to-server traffic.
        by_type = svc.network.stats.by_type
        assert by_type.get("PosQueryFwd", 0) == 0
        assert by_type.get("PosQueryDirect", 0) == 0
        assert svc.servers["root.3"].caches.stats.descriptor_hits == 1

    def test_without_req_acc_bypasses_cache(self):
        svc = make_service(descriptor_cache=True)
        svc.register("truck", Point(100, 100))
        client = svc.new_client(entry_server="root.3")
        svc.run(client.pos_query("truck", req_acc=500.0))
        svc.network.stats.reset()
        svc.run(client.pos_query("truck"))  # authoritative query
        assert svc.network.stats.by_type.get("PosQueryFwd", 0) >= 1


class TestAreaCacheIntegration:
    def warm_area_cache(self, svc, entry="root.0"):
        """One spanning range query teaches the entry all leaf areas."""
        svc.range_query(
            Rect(100, 100, 1400, 1400), req_acc=60.0, req_overlap=0.1, entry_server=entry
        )

    def test_range_query_goes_direct_after_warmup(self):
        svc = make_service(area_cache=True)
        for i, (x, y) in enumerate([(100, 100), (1400, 100), (100, 1400), (1400, 1400)]):
            svc.register(f"o{i}", Point(x, y))
        self.warm_area_cache(svc)
        assert svc.servers["root.0"].caches.known_leaf_count() >= 3
        root_fwds_before = svc.servers["root"].stats.messages_handled.get("RangeQueryFwd", 0)
        svc.network.stats.reset()
        answer = svc.range_query(
            Rect(1300, 1300, 1500, 1500), req_acc=60.0, req_overlap=0.3, entry_server="root.0"
        )
        assert {oid for oid, _ in answer.entries} == {"o3"}
        by_type = svc.network.stats.by_type
        # The root never sees the query: the fwd went straight to root.3.
        root_fwds_after = svc.servers["root"].stats.messages_handled.get("RangeQueryFwd", 0)
        assert root_fwds_after == root_fwds_before
        assert by_type.get("RangeQueryFwd", 0) == 1

    def test_direct_handover_repairs_path(self):
        svc = make_service(area_cache=True)
        obj = svc.register("truck", Point(700, 100))
        self.warm_area_cache(svc, entry="root.0")
        svc.network.stats.reset()
        svc.update(obj, Point(800, 100))  # into root.1, direct handover
        svc.settle()
        assert obj.agent == "root.1"
        by_type = svc.network.stats.by_type
        assert by_type.get("PathUpdate", 0) >= 1
        # The root's forwarding reference was repaired.
        assert svc.servers["root"].visitors.forward_ref("truck") == "root.1"
        assert "truck" not in svc.servers["root.0"].visitors
        svc.check_consistency()
        # Queries still find the object afterwards.
        assert svc.pos_query("truck", entry_server="root.2").pos == Point(800, 100)

    def test_direct_handover_multilevel_path_repair(self):
        svc = LocationService(
            build_quad_hierarchy(Rect(0, 0, 1600, 1600), depth=2),
            cache_config=CacheConfig(area_cache=True),
        )
        obj = svc.register("truck", Point(100, 100))
        # Warm the cache from the object's own entry leaf.
        svc.range_query(
            Rect(50, 50, 1550, 1550),
            req_acc=60.0,
            req_overlap=0.1,
            entry_server=obj.agent,
        )
        svc.update(obj, Point(1500, 1500))  # diagonal, crosses the root
        svc.settle()
        svc.check_consistency()
        assert svc.pos_query("truck", entry_server="root.0.0").pos == Point(1500, 1500)
