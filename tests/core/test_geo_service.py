"""Tests for the WGS84-facing facade."""

import pytest

from repro.core import GeoLocationService
from repro.geo import GeoCoordinate, haversine_distance

STUTTGART = GeoCoordinate(48.7758, 9.1829)


@pytest.fixture
def geo():
    return GeoLocationService.city(STUTTGART, extent_m=4_000.0, depth=1)


class TestCoordinatePlumbing:
    def test_anchor_maps_to_center(self, geo):
        local = geo.to_local(STUTTGART)
        assert local.x == pytest.approx(0.0)
        assert local.y == pytest.approx(0.0)
        center = geo.service.hierarchy.root_area().center
        assert (center.x, center.y) == (0.0, 0.0)

    def test_roundtrip(self, geo):
        coord = GeoCoordinate(48.78, 9.19)
        back = geo.to_geo(geo.to_local(coord))
        assert back.latitude == pytest.approx(coord.latitude, abs=1e-9)
        assert back.longitude == pytest.approx(coord.longitude, abs=1e-9)


class TestGeoApi:
    def test_register_and_pos_query(self, geo):
        near_station = GeoCoordinate(48.7840, 9.1829)
        geo.register("taxi", near_station)
        result = geo.pos_query("taxi")
        assert result is not None
        coord, acc = result
        assert acc == 25.0
        assert haversine_distance(coord, near_station) < 1.0

    def test_pos_query_unknown(self, geo):
        assert geo.pos_query("ghost") is None

    def test_update_moves_object(self, geo):
        taxi = geo.register("taxi", STUTTGART)
        north = GeoCoordinate(48.7850, 9.1829)
        geo.update(taxi, north)
        coord, _ = geo.pos_query("taxi")
        assert haversine_distance(coord, north) < 1.0

    def test_range_query_around(self, geo):
        geo.register("near", GeoCoordinate(48.7760, 9.1832))
        geo.register("far", GeoCoordinate(48.7900, 9.2000))
        answer = geo.range_query_around(
            STUTTGART, radius_m=300.0, req_acc=50.0, req_overlap=0.5
        )
        assert {oid for oid, _ in answer.entries} == {"near"}

    def test_neighbor_query(self, geo):
        geo.register("close", GeoCoordinate(48.7762, 9.1832))
        geo.register("distant", GeoCoordinate(48.7890, 9.1990))
        answer = geo.neighbor_query(STUTTGART, req_acc=50.0)
        assert answer.result.nearest[0] == "close"

    def test_deregister(self, geo):
        taxi = geo.register("taxi", STUTTGART)
        assert geo.deregister(taxi)
        assert geo.pos_query("taxi") is None

    def test_cross_leaf_movement(self, geo):
        taxi = geo.register("taxi", GeoCoordinate(48.7740, 9.1800))  # SW-ish
        geo.update(taxi, GeoCoordinate(48.7790, 9.1880))  # NE-ish
        geo.service.settle()
        geo.service.check_consistency()
        coord, _ = geo.pos_query("taxi")
        assert haversine_distance(coord, GeoCoordinate(48.7790, 9.1880)) < 1.0
