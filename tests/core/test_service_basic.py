"""End-to-end tests of the distributed LS on the simulated runtime."""

import pytest

from repro.core import LocationService, build_quad_hierarchy, build_table2_hierarchy
from repro.errors import RegistrationError
from repro.geo import Point, Polygon, Rect
from repro.model import AccuracyModel


@pytest.fixture
def svc():
    return LocationService(build_table2_hierarchy())


class TestRegistration:
    def test_register_assigns_correct_agent(self, svc):
        obj = svc.register("truck-1", Point(100, 100))
        assert obj.agent == "root.0"
        obj2 = svc.register("truck-2", Point(1400, 100))
        assert obj2.agent == "root.1"

    def test_register_builds_forwarding_path(self, svc):
        svc.register("truck-1", Point(100, 100))
        assert svc.servers["root"].visitors.forward_ref("truck-1") == "root.0"
        svc.check_consistency()

    def test_register_via_wrong_entry_server(self, svc):
        # Entry server root.3 is not responsible; the request must travel
        # up and down the hierarchy to root.0.
        obj = svc.new_tracked_object("truck-1", entry_server="root.3")
        svc.run(obj.register(Point(100, 100), 25.0, 100.0))
        assert obj.agent == "root.0"
        svc.check_consistency()

    def test_register_outside_service_area(self, svc):
        obj = svc.new_tracked_object("lost", entry_server="root.0")
        with pytest.raises(RegistrationError):
            svc.run(obj.register(Point(5000, 5000), 25.0, 100.0))

    def test_register_unachievable_accuracy(self):
        svc = LocationService(
            build_table2_hierarchy(), accuracy=AccuracyModel(sensor_floor=50.0)
        )
        obj = svc.new_tracked_object("fussy", entry_server="root.0")
        with pytest.raises(RegistrationError):
            svc.run(obj.register(Point(100, 100), 1.0, 10.0))

    def test_offered_accuracy_negotiation(self, svc):
        obj = svc.new_tracked_object("truck-1", entry_server="root.0")
        offered = svc.run(obj.register(Point(100, 100), 20.0, 100.0))
        assert offered == 20.0

    def test_deregister_removes_path(self, svc):
        obj = svc.register("truck-1", Point(100, 100))
        assert svc.deregister(obj)
        svc.settle()
        assert svc.total_tracked() == 0
        assert "truck-1" not in svc.servers["root"].visitors
        assert svc.pos_query("truck-1") is None


class TestUpdatesAndHandover:
    def test_local_update(self, svc):
        obj = svc.register("truck-1", Point(100, 100))
        res = svc.update(obj, Point(200, 200))
        assert res.ok
        assert obj.agent == "root.0"
        ld = svc.pos_query("truck-1", entry_server="root.0")
        assert ld.pos == Point(200, 200)

    def test_handover_to_adjacent_leaf(self, svc):
        obj = svc.register("truck-1", Point(700, 100))
        res = svc.update(obj, Point(800, 100))  # crosses into root.1
        assert res.ok
        assert obj.agent == "root.1"
        svc.settle()
        svc.check_consistency()
        assert svc.servers["root"].visitors.forward_ref("truck-1") == "root.1"
        assert "truck-1" not in svc.servers["root.0"].visitors

    def test_handover_three_level(self):
        svc = LocationService(build_quad_hierarchy(Rect(0, 0, 1600, 1600), depth=2))
        obj = svc.register("truck-1", Point(100, 100))
        first_agent = obj.agent
        svc.update(obj, Point(1500, 1500))  # diagonal: crosses the root
        svc.settle()
        assert obj.agent != first_agent
        svc.check_consistency()
        ld = svc.pos_query("truck-1", entry_server=first_agent)
        assert ld.pos == Point(1500, 1500)

    def test_leaving_service_area_deregisters(self, svc):
        obj = svc.register("truck-1", Point(100, 100))
        res = svc.update(obj, Point(9999, 9999))
        assert res.deregistered
        assert obj.deregistered
        svc.settle()
        assert svc.total_tracked() == 0
        assert "truck-1" not in svc.servers["root"].visitors
        svc.check_consistency()

    def test_query_after_many_handovers(self, svc):
        obj = svc.register("walker", Point(100, 750))
        # Walk east across all quadrant boundaries and back.
        xs = [400, 760, 1100, 1400, 1100, 760, 400, 100]
        for x in xs:
            svc.update(obj, Point(x, 750))
            svc.settle()
            svc.check_consistency()
        ld = svc.pos_query("walker", entry_server="root.3")
        assert ld.pos == Point(100, 750)


class TestPositionQueries:
    def test_local_query(self, svc):
        svc.register("truck-1", Point(100, 100))
        ld = svc.pos_query("truck-1", entry_server="root.0")
        assert ld.pos == Point(100, 100)
        assert ld.acc == 25.0

    def test_remote_query(self, svc):
        svc.register("truck-1", Point(100, 100))
        ld = svc.pos_query("truck-1", entry_server="root.3")
        assert ld is not None
        assert ld.pos == Point(100, 100)

    def test_unknown_object(self, svc):
        assert svc.pos_query("ghost", entry_server="root.0") is None

    def test_remote_query_message_flow(self, svc):
        """A remote query touches entry, root and the agent leaf."""
        svc.register("truck-1", Point(100, 100))
        svc.network.stats.reset()
        svc.pos_query("truck-1", entry_server="root.3")
        by_type = svc.network.stats.by_type
        assert by_type.get("PosQueryFwd", 0) == 2  # entry→root, root→agent
        assert by_type.get("PosQueryAnswer", 0) == 1  # agent→entry direct


class TestRangeQueries:
    def setup_objects(self, svc):
        # A 5x5 grid spanning all four quadrants.
        for row in range(5):
            for col in range(5):
                svc.register(
                    f"o{row}{col}", Point(150 + col * 300.0, 150 + row * 300.0)
                )

    def test_local_range_query(self, svc):
        self.setup_objects(svc)
        answer = svc.range_query(
            Rect(0, 0, 700, 700), req_acc=50.0, req_overlap=0.5, entry_server="root.0"
        )
        ids = {oid for oid, _ in answer.entries}
        assert ids == {"o00", "o01", "o10", "o11"}

    def test_spanning_range_query(self, svc):
        self.setup_objects(svc)
        answer = svc.range_query(
            Rect(400, 400, 1100, 1100), req_acc=50.0, req_overlap=0.5, entry_server="root.0"
        )
        ids = {oid for oid, _ in answer.entries}
        expected = {
            f"o{row}{col}"
            for row in range(5)
            for col in range(5)
            if 400 <= 150 + col * 300 <= 1100 and 400 <= 150 + row * 300 <= 1100
        }
        assert ids == expected
        assert answer.servers_involved == 4

    def test_remote_range_query(self, svc):
        self.setup_objects(svc)
        answer = svc.range_query(
            Rect(0, 0, 700, 700), req_acc=50.0, req_overlap=0.5, entry_server="root.3"
        )
        ids = {oid for oid, _ in answer.entries}
        assert ids == {"o00", "o01", "o10", "o11"}

    def test_polygon_area(self, svc):
        self.setup_objects(svc)
        triangle = Polygon([Point(0, 0), Point(1500, 0), Point(0, 1500)])
        answer = svc.range_query(
            triangle, req_acc=50.0, req_overlap=0.9, entry_server="root.0"
        )
        ids = {oid for oid, _ in answer.entries}
        # Objects comfortably below the anti-diagonal qualify.
        assert "o00" in ids
        assert "o44" not in ids

    def test_empty_result(self, svc):
        answer = svc.range_query(Rect(0, 0, 100, 100), entry_server="root.0")
        assert answer.entries == ()

    def test_matches_oracle_semantics(self, svc):
        """The distributed answer equals a centralized evaluation."""
        from repro.model import RangeQuery, range_query as oracle_range

        self.setup_objects(svc)
        query = RangeQuery(Rect(200, 200, 1300, 800), req_acc=50.0, req_overlap=0.4)
        answer = svc.range_query(
            query.area, req_acc=50.0, req_overlap=0.4, entry_server="root.2"
        )
        all_entries = []
        for server in svc.servers.values():
            if server.is_leaf:
                for oid in server.store.sightings.object_ids():
                    all_entries.append((oid, server.store.position_query(oid)))
        expected = oracle_range(all_entries, query)
        assert list(answer.entries) == expected


class TestNeighborQueries:
    def test_nearest_in_same_leaf(self, svc):
        svc.register("near", Point(100, 100))
        svc.register("far", Point(1400, 1400))
        answer = svc.neighbor_query(Point(120, 120), req_acc=50.0, entry_server="root.0")
        assert answer.result.nearest[0] == "near"

    def test_nearest_in_remote_leaf(self, svc):
        svc.register("only", Point(1400, 1400))
        answer = svc.neighbor_query(Point(10, 10), req_acc=50.0, entry_server="root.0")
        assert answer.result.nearest[0] == "only"
        assert answer.rounds >= 1

    def test_empty_service(self, svc):
        answer = svc.neighbor_query(Point(10, 10), entry_server="root.0")
        assert answer.result.nearest is None

    def test_near_set_across_leaves(self, svc):
        # Two objects just either side of the quadrant boundary at x=750.
        svc.register("west", Point(740, 100))
        svc.register("east", Point(760, 100))
        answer = svc.neighbor_query(
            Point(745, 100), req_acc=50.0, near_qual=100.0, entry_server="root.0"
        )
        assert answer.result.nearest[0] == "west"
        assert [oid for oid, _ in answer.result.near_set] == ["east"]

    def test_accuracy_filter(self, svc):
        obj = svc.new_tracked_object("coarse", entry_server="root.0")
        svc.run(obj.register(Point(100, 100), 80.0, 200.0))  # offered 80
        svc.register("fine", Point(500, 500))  # offered 25
        answer = svc.neighbor_query(Point(110, 110), req_acc=50.0, entry_server="root.0")
        assert answer.result.nearest[0] == "fine"

    def test_matches_oracle(self, svc):
        import random

        from repro.model import NearestNeighborQuery, nearest_neighbor

        rng = random.Random(3)
        for i in range(40):
            svc.register(
                f"o{i}", Point(rng.uniform(0, 1500), rng.uniform(0, 1500))
            )
        probe = Point(600, 900)
        answer = svc.neighbor_query(
            probe, req_acc=50.0, near_qual=120.0, entry_server="root.1"
        )
        all_entries = []
        for server in svc.servers.values():
            if server.is_leaf:
                for oid in server.store.sightings.object_ids():
                    all_entries.append((oid, server.store.position_query(oid)))
        expected = nearest_neighbor(
            all_entries, NearestNeighborQuery(probe, req_acc=50.0, near_qual=120.0)
        )
        assert answer.result.nearest == expected.nearest
        assert set(answer.result.near_set) == set(expected.near_set)


class TestAccuracyChange:
    def test_change_accuracy(self, svc):
        obj = svc.register("truck-1", Point(100, 100))
        offered = svc.run(obj.change_accuracy(40.0, 200.0))
        assert offered == 40.0
        assert svc.pos_query("truck-1").acc == 40.0

    def test_change_accuracy_rejected(self):
        svc = LocationService(
            build_table2_hierarchy(), accuracy=AccuracyModel(sensor_floor=30.0)
        )
        obj = svc.register("truck-1", Point(100, 100), des_acc=40.0, min_acc=100.0)
        with pytest.raises(RegistrationError):
            svc.run(obj.change_accuracy(1.0, 10.0))


class TestNoTaskErrors:
    def test_mixed_workload_leaves_no_dangling_errors(self, svc):
        import random

        rng = random.Random(5)
        objects = {}
        for i in range(20):
            pos = Point(rng.uniform(0, 1500), rng.uniform(0, 1500))
            objects[f"o{i}"] = svc.register(f"o{i}", pos)
        for _ in range(50):
            oid = rng.choice(list(objects))
            action = rng.random()
            if action < 0.5:
                svc.update(objects[oid], Point(rng.uniform(0, 1500), rng.uniform(0, 1500)))
            elif action < 0.75:
                svc.pos_query(oid, entry_server=rng.choice(svc.hierarchy.leaf_ids()))
            else:
                svc.range_query(
                    Rect.from_center(
                        Point(rng.uniform(100, 1400), rng.uniform(100, 1400)), 200, 200
                    ),
                    req_acc=60.0,
                    req_overlap=0.3,
                    entry_server=rng.choice(svc.hierarchy.leaf_ids()),
                )
        svc.settle()
        assert svc.loop.task_errors == []
        svc.check_consistency()
