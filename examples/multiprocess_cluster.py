#!/usr/bin/env python3
"""Multi-process deployment walkthrough: the paper's servers as real
OS processes talking over UDP sockets.

Every other example runs the hierarchy inside one interpreter (the
simulated or asyncio runtime).  This one deploys it the way the paper's
system would actually run: :class:`repro.net.ClusterLauncher` spawns
one process per ``LocationServer`` from the hierarchy spec, wires the
address book (logical server id → host:port), starts the tree root
first, and probes each node until it answers.  The driver process then
speaks the ordinary protocol — the same ``RegisterReq`` /
``UpdateBatchReq`` / ``PosQueryReq`` dataclasses, serialized through
the versioned wire codec (:mod:`repro.net.wire`) — to servers it shares
no memory with.

The walkthrough:

1. start a five-process UDP cluster (table-2 hierarchy: root + 4 leaves);
2. register a delivery van and report it moving across a leaf border
   (a real cross-process handover);
3. query it from a *different* entry leaf, routing through the root
   process;
4. bump the topology epoch and have every process adopt it;
5. shut the cluster down leaves-first.

Run:  python examples/multiprocess_cluster.py
"""

import asyncio

from repro.core import messages as m
from repro.core.hierarchy import Hierarchy, build_table2_hierarchy
from repro.geo import Point
from repro.model import SightingRecord
from repro.net import ClusterLauncher
from repro.runtime.base import Endpoint

AREA_SIDE = 1500.0  # meters; 4 leaf quadrants of 750 m


async def request(endpoint: Endpoint, dest: str, make_message, retries: int = 4):
    """The protocol lane's recovery, driver-side: UDP may drop the
    datagram, so an unanswered request is re-sent with a fresh id."""
    last = None
    for _ in range(retries + 1):
        try:
            return await endpoint.request(
                dest, make_message(endpoint.next_request_id()), timeout=2.0
            )
        except Exception as exc:  # TransportError: timed out
            last = exc
    raise last


async def main() -> None:
    hierarchy = build_table2_hierarchy(AREA_SIDE)
    launcher = ClusterLauncher(hierarchy, transport="udp")

    print("starting 5 node processes (root first, then the leaves)...")
    await launcher.start()
    print("  node processes:")
    for server_id in launcher.order:
        host, port = launcher.transport.book.resolve(server_id)
        print(f"    {server_id:8s} -> pid {launcher._processes[server_id].pid}, "
              f"udp {host}:{port}")

    try:
        client = launcher.join(Endpoint("example-client"))

        # -- 1. register at the entry leaf owning the position ------------
        start = Point(700.0, 300.0)  # inside root.0, near the border
        entry = hierarchy.leaf_for_point(start)
        res = await request(
            client,
            entry,
            lambda rid: m.RegisterReq(
                request_id=rid,
                reply_to=client.address,
                sighting=SightingRecord("van-1", 0.0, start, 10.0),
                des_acc=25.0,
                min_acc=100.0,
                registrar=client.address,
            ),
        )
        print(f"\nregistered van-1 at {entry} (agent={res.agent}, "
              f"offered {res.offered_acc} m)")

        # -- 2. report it across the leaf border (cross-process handover) --
        agent = res.agent
        for t, pos in enumerate(
            [Point(730.0, 300.0), Point(760.0, 300.0), Point(800.0, 300.0)], 1
        ):
            res = await request(
                client,
                agent,
                lambda rid: m.UpdateBatchReq(
                    request_id=rid,
                    reply_to=client.address,
                    sightings=(SightingRecord("van-1", float(t), pos, 10.0),),
                    epoch=hierarchy.epoch,
                ),
            )
            outcome = res.outcomes[0]
            if outcome.agent and outcome.agent != agent:
                print(f"  t={t}: moved to {pos.x:.0f}m -> handover "
                      f"{agent} => {outcome.agent}")
                agent = outcome.agent
            else:
                print(f"  t={t}: moved to {pos.x:.0f}m (agent {agent})")

        # -- 3. query from a different entry leaf --------------------------
        far_leaf = next(
            leaf for leaf in hierarchy.leaf_ids() if leaf not in (entry, agent)
        )
        res = await request(
            client,
            far_leaf,
            lambda rid: m.PosQueryReq(
                request_id=rid, reply_to=client.address, object_id="van-1"
            ),
        )
        print(f"\nposition query entered at {far_leaf}, routed through the "
              f"root process:\n  van-1 is at ({res.descriptor.pos.x:.0f}, "
              f"{res.descriptor.pos.y:.0f}) ± {res.descriptor.acc:.0f} m")
        print(f"cluster-wide tracked objects: {await launcher.total_tracked()}")

        # -- 4. epoch bump adopted by every process ------------------------
        bumped = Hierarchy(dict(hierarchy.configs), epoch=hierarchy.epoch + 1)
        adopted = await launcher.adopt_hierarchy(bumped)
        print(f"\nepoch bump adopted by all {len(adopted)} processes: "
              f"{sorted(set(adopted.values()))}")
    finally:
        print("\nshutting down (leaves first, root last)...")
        await launcher.stop()
    print("all node processes exited.")


if __name__ == "__main__":
    asyncio.run(main())
