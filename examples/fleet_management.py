#!/usr/bin/env python3
"""Fleet-management scenario (paper Section 3.2's running example).

A logistics operator tracks a truck fleet over a 10 km x 10 km region:

* *position query* — "get the current position of a certain truck,
  which has been scheduled for an inspection at short notice";
* *range query* — "find all trucks that are in a given part of a city";
* *nearest-neighbor query* — "find the nearest (free) truck for a load
  of goods".

The example also contrasts two update-reporting policies from [15]: the
paper's distance-based protocol versus dead reckoning, showing the
update traffic each needs to maintain the same accuracy bound.

Run:  python examples/fleet_management.py
"""

from repro import LocationService, Point, Rect, build_quad_hierarchy
from repro.protocols import DeadReckoningPolicy, DistancePolicy, simulate_policy
from repro.sim.mobility import RandomWaypointWalker

REGION = Rect(0, 0, 10_000, 10_000)
DEPOT = Point(5_000, 5_000)
FLEET_SIZE = 40
ACCURACY = 50.0  # meters the dispatcher can tolerate


def main() -> None:
    # Depth-2 quad hierarchy: 16 leaf servers of 2.5 km x 2.5 km each.
    service = LocationService(build_quad_hierarchy(REGION, depth=2))

    # -- roll out the fleet --------------------------------------------------
    fleet = {}
    walkers = {}
    for i in range(FLEET_SIZE):
        walker = RandomWaypointWalker(
            REGION, seed=1000 + i, min_speed=8.0, max_speed=14.0  # 30-50 km/h
        )
        truck = service.register(
            f"truck-{i:02d}", walker.position, des_acc=ACCURACY, min_acc=200.0
        )
        fleet[truck.object_id] = truck
        walkers[truck.object_id] = walker

    # Drive for 30 simulated minutes with the paper's distance-based
    # update protocol (report when drifted more than the offered acc).
    updates_sent = 0
    for _ in range(60):  # 30 min in 30 s ticks
        for oid, walker in walkers.items():
            pos = walker.step(30.0)
            if service.run(fleet[oid].move_to(pos)):
                updates_sent += 1
    handovers = sum(s.stats.handovers_admitted for s in service.servers.values())
    print(
        f"fleet of {FLEET_SIZE} trucks, 30 min driven: "
        f"{updates_sent} updates sent, {handovers} handovers"
    )

    # -- 1. inspection call: where is truck-17 right now? -----------------------
    ld = service.pos_query("truck-17")
    print(
        f"inspection: truck-17 is at ({ld.pos.x:.0f}, {ld.pos.y:.0f}) "
        f"within {ld.acc:.0f} m"
    )

    # -- 2. district sweep: all trucks in the north-east district ----------------
    district = Rect(6_000, 6_000, 10_000, 10_000)
    answer = service.range_query(district, req_acc=100.0, req_overlap=0.5)
    print(
        f"district sweep: {len(answer.entries)} trucks in the NE district "
        f"({answer.servers_involved} leaf servers consulted)"
    )

    # -- 3. new load at the depot: closest truck wins ------------------------------
    nn = service.neighbor_query(DEPOT, req_acc=100.0, near_qual=2 * 100.0)
    oid, ld = nn.result.nearest
    print(
        f"dispatch: {oid} is closest to the depot "
        f"({ld.pos.distance_to(DEPOT):.0f} m recorded, guaranteed ≥ "
        f"{nn.result.guaranteed_min_distance:.0f} m); "
        f"{len(nn.result.near_set)} runner(s)-up could potentially be closer"
    )

    # -- 4. update-protocol shoot-out ([15]) -----------------------------------------
    print("\nupdate-protocol comparison (same trajectory, 50 m bound):")
    for name, policy_factory in [
        ("distance-based (paper §6.2)", lambda: DistancePolicy(threshold=ACCURACY)),
        ("dead reckoning (DOMINO [24])", lambda: DeadReckoningPolicy(threshold=ACCURACY)),
    ]:
        total_updates = 0
        worst = 0.0
        for seed in range(10):
            walker = RandomWaypointWalker(REGION, seed=seed, min_speed=8.0, max_speed=14.0)
            outcome = simulate_policy(policy_factory(), walker.trajectory(1800.0, 5.0))
            total_updates += outcome["updates"]
            worst = max(worst, outcome["max_deviation"])
        print(
            f"  {name:<30} {total_updates:4d} updates / 10 trucks / 30 min,"
            f" worst server-side error {worst:.0f} m"
        )

    service.check_consistency()
    print("\nforwarding paths verified consistent after the whole run")


if __name__ == "__main__":
    main()
