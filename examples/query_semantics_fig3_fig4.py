#!/usr/bin/env python3
"""Recreate the paper's Figures 3 and 4 as executable scenarios.

Figure 3 illustrates range-query membership: overlap degree versus the
``reqOverlap`` threshold and the ``reqAcc`` accuracy filter.  Figure 4
illustrates nearest-neighbor selection, the ``nearQual`` ring and the
guaranteed minimal distance.  This example evaluates both, printing each
object's overlap/distance and whether it qualifies — the runnable
counterpart of the figures.

Run:  python examples/query_semantics_fig3_fig4.py
"""

from repro import LocationDescriptor, NearestNeighborQuery, Point, RangeQuery, Rect
from repro.model import nearest_neighbor, overlap, range_query


def figure3() -> None:
    print("=" * 68)
    print("Figure 3 — range query semantics")
    print("=" * 68)
    area = Rect(0, 0, 100, 100)
    req_acc, req_overlap = 50.0, 0.3
    objects = {
        "o1 (well inside)": LocationDescriptor(Point(50, 50), 10.0),
        "o2 (far outside)": LocationDescriptor(Point(200, 200), 10.0),
        "o3 (straddles the edge)": LocationDescriptor(Point(100, 50), 10.0),
        "o4 (mostly outside)": LocationDescriptor(Point(108, 50), 10.0),
        "o5 (too inaccurate)": LocationDescriptor(Point(50, 50), 60.0),
    }
    print(f"queried area: 100 m x 100 m, reqAcc={req_acc:.0f} m, reqOverlap={req_overlap}")
    print(f"{'object':<26} {'acc':>5} {'overlap':>8}  verdict")
    query = RangeQuery(area, req_acc=req_acc, req_overlap=req_overlap)
    members = {oid for oid, _ in range_query(list(objects.items()), query)}
    for name, ld in objects.items():
        degree = overlap(area, ld)
        if name in members:
            verdict = "included"
        elif ld.acc > req_acc:
            verdict = "excluded (accuracy worse than reqAcc)"
        else:
            verdict = "excluded (overlap below threshold)"
        print(f"{name:<26} {ld.acc:>4.0f}m {degree:>7.1%}  {verdict}")


def figure4() -> None:
    print()
    print("=" * 68)
    print("Figure 4 — nearest-neighbor semantics")
    print("=" * 68)
    probe = Point(0, 0)
    req_acc, near_qual = 50.0, 60.0
    objects = {
        "o  (selected)": LocationDescriptor(Point(100, 0), 30.0),
        "o1 (inside nearQual ring)": LocationDescriptor(Point(140, 0), 30.0),
        "o2 (outside the ring)": LocationDescriptor(Point(300, 0), 30.0),
        "o3 (closest but too inaccurate)": LocationDescriptor(Point(50, 0), 80.0),
    }
    print(f"probe p = origin, reqAcc={req_acc:.0f} m, nearQual={near_qual:.0f} m")
    result = nearest_neighbor(
        list(objects.items()),
        NearestNeighborQuery(probe, req_acc=req_acc, near_qual=near_qual),
    )
    nearest_id = result.nearest[0]
    near_ids = {oid for oid, _ in result.near_set}
    print(f"{'object':<32} {'dist':>6} {'acc':>5}  verdict")
    for name, ld in objects.items():
        d = ld.pos.distance_to(probe)
        if name == nearest_id:
            verdict = "selected as nearestObj"
        elif name in near_ids:
            verdict = "in nearObjSet"
        elif ld.acc > req_acc:
            verdict = "not considered (accuracy)"
        else:
            verdict = "outside the nearQual ring"
        print(f"{name:<32} {d:>5.0f}m {ld.acc:>4.0f}m  {verdict}")
    print(
        f"\nguaranteed minimal distance: {result.guaranteed_min_distance:.0f} m "
        "(no qualifying object can be closer — e.g. a power-control bound)"
    )


if __name__ == "__main__":
    figure3()
    figure4()
