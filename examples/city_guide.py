#!/usr/bin/env python3
"""City-guide scenario from the paper's introduction.

"In a city guide application an information service for public
transportation might want to announce the delay of a bus to all users
waiting at the next station.  In consequence, a user may want to find
the nearest available taxi cab."

This example simulates a small city center on a 2 km x 2 km service
area: pedestrians wander on a street grid, taxis cruise, buses follow a
fixed line.  The transport operator announces a delay with a *range
query* around the station; a stranded user then finds the closest free
taxi with a *nearest-neighbor query*.

Run:  python examples/city_guide.py
"""

import random

from repro import CacheConfig, LocationService, Point, Rect, build_quad_hierarchy
from repro.sim.mobility import ManhattanWalker, RandomWaypointWalker

CITY = Rect(0, 0, 2000, 2000)
STATION = Point(1000, 1000)
SIM_MINUTES = 10
TICK_SECONDS = 15.0


def main() -> None:
    rng = random.Random(42)
    # 16 leaf servers (depth-2 quad split), with the §6.5 caches on —
    # a city deployment would absolutely run them.
    service = LocationService(
        build_quad_hierarchy(CITY, depth=2),
        cache_config=CacheConfig.all_enabled(max_speed=15.0),
    )

    # -- population ---------------------------------------------------------
    # Half the pedestrians roam the whole city; the other half mill around
    # the station district (a 600 m x 600 m block around the station).
    station_district = Rect.from_center(STATION, 600.0, 600.0)
    pedestrians = {}
    for i in range(30):
        home = CITY if i % 2 == 0 else station_district
        walker = ManhattanWalker(home, seed=i, block=200.0, speed=1.4)
        obj = service.register(f"user-{i}", walker.position, des_acc=30.0, min_acc=150.0)
        pedestrians[f"user-{i}"] = (obj, walker)

    taxis = {}
    taxi_free = {}
    for i in range(8):
        walker = RandomWaypointWalker(CITY, seed=100 + i, min_speed=5.0, max_speed=12.0)
        obj = service.register(f"taxi-{i}", walker.position, des_acc=25.0, min_acc=100.0)
        taxis[f"taxi-{i}"] = (obj, walker)
        taxi_free[f"taxi-{i}"] = rng.random() < 0.75  # most taxis are free

    bus_route = [Point(200, 1000), Point(600, 1000), STATION, Point(1400, 1000), Point(1800, 1000)]
    bus = service.register("bus-7", bus_route[0], des_acc=25.0, min_acc=100.0)

    # -- drive the city for a few minutes -------------------------------------
    handovers_before = sum(s.stats.handovers_admitted for s in service.servers.values())
    ticks = int(SIM_MINUTES * 60 / TICK_SECONDS)
    for tick in range(ticks):
        for obj, walker in pedestrians.values():
            service.run(obj.move_to(walker.step(TICK_SECONDS)))
        for obj, walker in taxis.values():
            service.run(obj.move_to(walker.step(TICK_SECONDS)))
        service.update(bus, bus_route[min(tick // 8, len(bus_route) - 1)])
    handovers = (
        sum(s.stats.handovers_admitted for s in service.servers.values()) - handovers_before
    )
    print(
        f"{SIM_MINUTES} simulated minutes: {service.total_tracked()} tracked objects, "
        f"{handovers} handovers between leaf service areas"
    )

    # -- scenario 1: announce the bus delay to everyone near the station -------
    waiting_area = Rect.from_center(STATION, 400.0, 400.0)
    announcement = service.range_query(
        waiting_area,
        req_acc=120.0,   # ignore anyone whose position is too vague
        req_overlap=0.5, # at least half their location area at the station
        entry_server=service.entry_server_for(STATION),
    )
    waiting_users = [oid for oid, _ in announcement.entries if oid.startswith("user-")]
    print(
        f"bus-7 delayed: announcing to {len(waiting_users)} user(s) within 200 m "
        f"of the station (query touched {announcement.servers_involved} leaf server(s))"
    )
    for oid in waiting_users:
        print(f"  -> push notification to {oid}")

    # -- scenario 2: a stranded user hails the nearest free taxi ----------------
    stranded = waiting_users[0] if waiting_users else "user-0"
    user_pos = service.pos_query(stranded).pos
    # A wide nearQual ring so occupied taxis and pedestrians between the
    # user and the nearest free cab do not starve the search.
    nn = service.neighbor_query(
        user_pos,
        req_acc=80.0,
        near_qual=2000.0,
        entry_server=service.entry_server_for(user_pos),
    )
    candidates = []
    if nn.result.nearest is not None:
        candidates.append(nn.result.nearest)
    candidates.extend(nn.result.near_set)
    free = [
        (oid, ld) for oid, ld in candidates if oid.startswith("taxi-") and taxi_free.get(oid)
    ]
    if free:
        chosen, ld = free[0]
        distance = ld.pos.distance_to(user_pos)
        print(
            f"{stranded} hails {chosen}: ~{distance:.0f} m away "
            f"(guaranteed no free taxi closer than "
            f"{nn.result.guaranteed_min_distance:.0f} m)"
        )
    else:
        print(f"{stranded} found no free taxi nearby; widening the search would help")

    # -- cache effectiveness (Section 6.5) ---------------------------------------
    total_hits = sum(
        s.caches.stats.area_hits + s.caches.stats.agent_hits + s.caches.stats.descriptor_hits
        for s in service.servers.values()
        if s.is_leaf
    )
    print(f"leaf-cache hits during the run: {total_hits}")
    service.check_consistency()
    print("hierarchy-wide forwarding paths verified consistent")


if __name__ == "__main__":
    main()
