#!/usr/bin/env python3
"""Event mechanism walkthrough (paper Section 1 / future work).

"Applications should be able to register for predicates, such as 'more
than five objects are in a certain area' or 'two users of the system
meet', at the location service, which asynchronously informs the
registered applications when the predicate becomes true."

This example registers both predicate types and drives a small crowd
until they fire:

* a venue operator is notified when at least 5 people are inside the
  event hall (area-occupancy predicate), and again when the hall clears;
* two friends get a notification the moment their recorded positions
  come within 30 m of each other (proximity predicate).

Run:  python examples/event_monitoring.py
"""

from repro import LocationService, Point, Rect, build_table2_hierarchy
from repro.core.events import AreaOccupancy, Proximity

HALL = Rect(600, 600, 900, 900)


def drain(service, seconds):
    async def wait():
        await service.loop.sleep(seconds)

    service.run(wait())


def main() -> None:
    service = LocationService(build_table2_hierarchy())
    operator = service.new_client(entry_server="root.0")
    matchmaker = service.new_client(entry_server="root.1")

    # -- subscriptions ------------------------------------------------------
    hall_sub = service.run(
        operator.subscribe(
            AreaOccupancy(HALL, threshold=5, req_acc=60.0, req_overlap=0.5),
            poll_interval=2.0,
            notify_on_clear=True,
        )
    )
    meet_sub = service.run(
        matchmaker.subscribe(Proximity("alice", "bob", distance=30.0), poll_interval=2.0)
    )
    print(f"subscriptions registered: {hall_sub}, {meet_sub}")

    # -- the crowd arrives ---------------------------------------------------
    crowd = {}
    for i in range(8):
        crowd[f"guest-{i}"] = service.register(f"guest-{i}", Point(100 + 40.0 * i, 150))
    alice = service.register("alice", Point(1200, 200))
    bob = service.register("bob", Point(200, 1200))
    drain(service, 5.0)
    print(f"hall notifications so far: {len(operator.notifications)} (hall still empty)")

    # Guests stream into the hall one by one.
    for i, guest in enumerate(crowd.values()):
        service.update(guest, Point(650 + 20.0 * i, 700 + 15.0 * i))
        drain(service, 3.0)
        if operator.notifications:
            fired = operator.notifications[-1]
            print(
                f"after guest #{i + 1} entered: predicate fired={fired.fired} "
                f"({fired.detail})"
            )
            break

    # -- alice walks toward bob -----------------------------------------------
    waypoints = [Point(900, 500), Point(600, 800), Point(300, 1100), Point(210, 1195)]
    for pos in waypoints:
        service.update(alice, pos)
        drain(service, 3.0)
        if matchmaker.notifications:
            break
    meeting = matchmaker.notifications[-1]
    print(f"meeting notification: {meeting.detail} between {meeting.matched}")

    # -- the hall empties -------------------------------------------------------
    for guest in crowd.values():
        service.update(guest, Point(100, 100))
    drain(service, 5.0)
    cleared = [n for n in operator.notifications if not n.fired]
    print(f"hall-cleared notification received: {bool(cleared)}")

    # -- cleanup -----------------------------------------------------------------
    service.run(operator.unsubscribe(hall_sub))
    service.run(matchmaker.unsubscribe(meet_sub))
    print("unsubscribed; active subscriptions:",
          sum(s.events.active_count for s in service.servers.values()))


if __name__ == "__main__":
    main()
