#!/usr/bin/env python3
"""Quickstart: stand up a location service and use every query type.

Builds the paper's own testbed topology (one root server over four
quadrant leaf servers, Fig. 8), registers a handful of tracked objects,
and walks through position updates, handover, position / range / nearest
neighbor queries, and accuracy renegotiation.

Run:  python examples/quickstart.py
"""

from repro import (
    LocationService,
    Point,
    Rect,
    build_table2_hierarchy,
)


def main() -> None:
    # A 1.5 km x 1.5 km service area split into four quadrant leaves.
    service = LocationService(build_table2_hierarchy(side_m=1500.0))
    print("servers:", ", ".join(service.hierarchy.server_ids()))

    # -- registration (Section 3.1) ---------------------------------------
    # The client desires 25 m accuracy and accepts anything up to 100 m;
    # the service offers the best it can manage, never better than asked.
    taxi = service.register("taxi-7", Point(200, 300), des_acc=25.0, min_acc=100.0)
    print(f"taxi-7 registered at agent {taxi.agent}, offered accuracy {taxi.offered_acc} m")

    bus = service.register("bus-42", Point(1200, 300), des_acc=25.0, min_acc=100.0)
    pedestrian = service.register("alice", Point(400, 900), des_acc=25.0, min_acc=100.0)

    # -- position updates & handover (Algorithms 6-2 / 6-3) -----------------
    service.update(taxi, Point(600, 350))  # still inside root.0: local update
    print(f"after local update, taxi agent: {taxi.agent}")

    service.update(taxi, Point(900, 350))  # crosses into root.1: handover
    print(f"after crossing the quadrant boundary, taxi agent: {taxi.agent}")

    # -- position query (Algorithm 6-4) ---------------------------------------
    descriptor = service.pos_query("taxi-7", entry_server="root.2")  # remote entry
    print(
        f"posQuery(taxi-7) -> position ({descriptor.pos.x:.0f}, {descriptor.pos.y:.0f}),"
        f" accuracy {descriptor.acc} m"
    )

    # -- range query (Algorithm 6-5) --------------------------------------------
    # Who is currently in the eastern half, with at least 30 % overlap?
    answer = service.range_query(
        Rect(750, 0, 1500, 1500), req_acc=50.0, req_overlap=0.3, entry_server="root.0"
    )
    names = ", ".join(oid for oid, _ in answer.entries)
    print(f"rangeQuery(eastern half) -> {{{names}}} via {answer.servers_involved} leaf server(s)")

    # -- nearest-neighbor query (Section 3.2) -------------------------------------
    nn = service.neighbor_query(
        Point(450, 880), req_acc=50.0, near_qual=500.0, entry_server="root.2"
    )
    nearest_id, nearest_ld = nn.result.nearest
    print(
        f"neighborQuery(450, 880) -> nearest={nearest_id}, "
        f"guaranteed min distance {nn.result.guaranteed_min_distance:.0f} m, "
        f"{len(nn.result.near_set)} additional near neighbor(s)"
    )

    # -- accuracy renegotiation (changeAcc) -----------------------------------------
    offered = service.run(pedestrian.change_accuracy(des_acc=60.0, min_acc=200.0))
    print(f"alice coarsened her reported accuracy to {offered} m (privacy knob)")

    # -- deregistration ----------------------------------------------------------------
    service.deregister(bus)
    print("bus-42 deregistered; tracked objects remaining:", service.total_tracked())

    # The virtual clock advanced only by simulated network latency.
    print(f"virtual time elapsed: {service.loop.now * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
