#!/usr/bin/env python3
"""Crash recovery walkthrough (paper Section 5 / Fig. 7).

The sighting DB and its indexes live in volatile memory; the visitor DB
(forwarding paths, registration info) is persistent.  This example
crashes a leaf server, shows that queries for its visitors fail while
the rest of the service keeps working, and then demonstrates both
recovery paths the paper describes:

1. volatile state rebuilt "as position update requests come in", and
2. the soft-state expiry deregistering objects that never come back.

Run:  python examples/crash_recovery.py
"""

from repro import LocationService, Point, Rect, build_table2_hierarchy


def main() -> None:
    service = LocationService(build_table2_hierarchy(), sighting_ttl=300.0)

    trucks = {}
    for i, (x, y) in enumerate(
        [(100, 100), (400, 300), (650, 650), (1200, 200), (300, 1300)]
    ):
        trucks[f"truck-{i}"] = service.register(f"truck-{i}", Point(x, y))
    west = [oid for oid, t in trucks.items() if t.agent == "root.0"]
    print(f"registered {len(trucks)} trucks; {len(west)} homed at leaf root.0: {west}")

    # -- crash root.0 ----------------------------------------------------------
    leaf = service.servers["root.0"]
    leaf.simulate_crash_recovery()
    print(
        "\nroot.0 crashed and restarted: "
        f"{len(leaf.store.sightings)} sightings in memory, "
        f"{leaf.store.visitor_count} visitor records recovered from persistent storage"
    )

    # Forwarding paths survived: the hierarchy still routes to root.0.
    for oid in west:
        assert service.servers["root"].visitors.forward_ref(oid) == "root.0"
    print("forwarding paths at the root still point to root.0 (persistent visitor DB)")

    # Queries for its visitors come up empty until updates arrive...
    print(f"posQuery({west[0]}) right after the crash:", service.pos_query(west[0]))
    # ...while objects at other leaves are unaffected.
    other = next(oid for oid, t in trucks.items() if t.agent != "root.0")
    print(f"posQuery({other}) at an unaffected leaf:", "found" if service.pos_query(other) else "lost")

    # -- recovery path 1: the update protocol refills the sighting DB -----------
    recovered = west[0]
    service.update(trucks[recovered], Point(120, 130))
    ld = service.pos_query(recovered)
    print(
        f"\nafter one position update, posQuery({recovered}) -> "
        f"({ld.pos.x:.0f}, {ld.pos.y:.0f}) acc {ld.acc:.0f} m "
        "(negotiated accuracy survived the crash)"
    )
    answer = service.range_query(
        Rect(0, 0, 750, 750), req_acc=50.0, req_overlap=0.3, entry_server="root.1"
    )
    print(
        "range query over the west quadrant sees the recovered truck:",
        sorted(oid for oid, _ in answer.entries),
    )

    # -- recovery path 2: soft state reaps the ones that never return -------------
    silent = [oid for oid in west if oid != recovered]

    async def advance(seconds):
        await service.loop.sleep(seconds)

    service.run(advance(600.0))  # two TTLs pass without updates
    leaf.sweep_soft_state()
    service.settle()
    print(
        f"\nafter the 300 s soft-state TTL: {silent} expired and were "
        "deregistered hierarchy-wide"
    )
    for oid in silent:
        assert service.pos_query(oid) is None
        assert oid not in service.servers["root"].visitors
    survivor_count = service.total_tracked()
    print(f"tracked objects remaining: {survivor_count}")
    service.check_consistency()
    print("forwarding-path consistency verified")


if __name__ == "__main__":
    main()
